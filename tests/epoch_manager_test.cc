// CorpusManager / CorpusSnapshot: epoch chaining, the incremental
// posting-list merge, and the determinism contract that a merged epoch's
// index is bitwise identical to one built fresh from the epoch's corpus.
// The concurrency case (queries pinning epochs while publishes land) is
// the TSan target of the `epoch` suites.

#include "asup/index/corpus_manager.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/search_engine.h"
#include "asup/engine/sharded_service.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/thread_pool.h"

namespace asup {
namespace {

SyntheticCorpusConfig SmallConfig(uint64_t seed = 7) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 2000;
  config.num_topics = 12;
  config.words_per_topic = 150;
  config.seed = seed;
  return config;
}

/// A delta that adds `add` fresh universe documents (the generator owns the
/// id sequence) and removes every stride-th current document.
CorpusDelta MakeDelta(SyntheticCorpusGenerator& generator,
                      const Corpus& current, size_t add, size_t remove) {
  CorpusDelta delta;
  if (add > 0) {
    const Corpus fresh = generator.Generate(add);
    delta.add.assign(fresh.documents().begin(), fresh.documents().end());
  }
  if (remove > 0 && !current.documents().empty()) {
    const size_t stride = std::max<size_t>(1, current.size() / remove);
    for (size_t pos = 0; pos < current.size() && delta.remove.size() < remove;
         pos += stride) {
      delta.remove.push_back(current.documents()[pos].id());
    }
  }
  return delta;
}

/// Structural byte-level equality of two indexes: same local-id mapping,
/// same per-term compressed posting lists (payload size, skip entries, and
/// decoded content), and exactly equal stats (including the double
/// average, which the merge must reproduce with fresh-build arithmetic).
void ExpectIndexesBitwiseEqual(const InvertedIndex& a,
                               const InvertedIndex& b) {
  ASSERT_EQ(a.NumDocuments(), b.NumDocuments());
  for (uint32_t local = 0; local < a.NumDocuments(); ++local) {
    ASSERT_EQ(a.LocalToId(local), b.LocalToId(local)) << "local " << local;
  }
  EXPECT_EQ(a.stats().num_documents, b.stats().num_documents);
  EXPECT_EQ(a.stats().num_terms, b.stats().num_terms);
  EXPECT_EQ(a.stats().num_postings, b.stats().num_postings);
  EXPECT_EQ(a.stats().posting_bytes, b.stats().posting_bytes);
  EXPECT_EQ(a.stats().average_doc_length, b.stats().average_doc_length);
  const size_t vocab = a.corpus().vocabulary().size();
  for (TermId term = 0; term < vocab; ++term) {
    const PostingList& pa = a.Postings(term);
    const PostingList& pb = b.Postings(term);
    ASSERT_EQ(pa.size(), pb.size()) << "term " << term;
    ASSERT_EQ(pa.ByteSize(), pb.ByteSize()) << "term " << term;
    ASSERT_EQ(pa.NumSkipEntries(), pb.NumSkipEntries()) << "term " << term;
    const auto da = pa.Decode();
    const auto db = pb.Decode();
    ASSERT_EQ(da.size(), db.size()) << "term " << term;
    for (size_t i = 0; i < da.size(); ++i) {
      ASSERT_EQ(da[i].local_doc, db[i].local_doc) << "term " << term;
      ASSERT_EQ(da[i].freq, db[i].freq) << "term " << term;
    }
  }
}

TEST(CorpusSnapshotTest, BorrowedStaticIndexIsEpochZero) {
  SyntheticCorpusGenerator generator(SmallConfig());
  const Corpus corpus = generator.Generate(120);
  const InvertedIndex index(corpus);
  const SnapshotHandle snapshot = CorpusSnapshot::Borrow(index);
  EXPECT_EQ(snapshot->epoch(), 0u);
  EXPECT_TRUE(snapshot->has_index());
  EXPECT_FALSE(snapshot->has_sharded());
  EXPECT_EQ(snapshot->NumDocuments(), corpus.size());
  EXPECT_EQ(&snapshot->index(), &index);
  EXPECT_NE(snapshot->Fingerprint(), 0u);
}

TEST(CorpusManagerTest, InitialEpochIsOneAndEmptyDeltaIsNoop) {
  SyntheticCorpusGenerator generator(SmallConfig());
  CorpusManager manager(generator.Generate(150));
  EXPECT_EQ(manager.CurrentEpoch(), 1u);
  const SnapshotHandle before = manager.Current();
  const SnapshotHandle after = manager.Apply(CorpusDelta{});
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(manager.CurrentEpoch(), 1u);
}

TEST(CorpusManagerTest, ApplyPublishesNextEpochAndPinsOldOne) {
  SyntheticCorpusGenerator generator(SmallConfig());
  CorpusManager manager(generator.Generate(150));
  const SnapshotHandle old_epoch = manager.Current();
  const CorpusDelta delta =
      MakeDelta(generator, old_epoch->corpus(), /*add=*/30, /*remove=*/10);
  const SnapshotHandle new_epoch = manager.Apply(delta);
  EXPECT_EQ(new_epoch->epoch(), 2u);
  EXPECT_EQ(manager.CurrentEpoch(), 2u);
  EXPECT_EQ(new_epoch->NumDocuments(),
            old_epoch->NumDocuments() + delta.add.size() -
                delta.remove.size());
  // The old handle still reads its own epoch: removed documents are still
  // there, added ones absent.
  EXPECT_EQ(old_epoch->NumDocuments(), 150u);
  EXPECT_TRUE(old_epoch->Contains(delta.remove.front()));
  EXPECT_FALSE(new_epoch->Contains(delta.remove.front()));
  EXPECT_TRUE(new_epoch->Contains(delta.add.front().id()));
  EXPECT_FALSE(old_epoch->Contains(delta.add.front().id()));
  // Dense local ids stay ascending-by-DocId in every epoch.
  for (uint32_t local = 1; local < new_epoch->NumDocuments(); ++local) {
    EXPECT_LT(new_epoch->LocalToId(local - 1), new_epoch->LocalToId(local));
  }
}

TEST(CorpusManagerTest, MergedEpochIndexBitwiseEqualsFreshBuild) {
  // The heart of the determinism contract, across delta shapes: pure
  // append, pure removal, and mixed add+remove, chained over 4 epochs.
  SyntheticCorpusGenerator managed_gen(SmallConfig(21));
  SyntheticCorpusGenerator fresh_gen(SmallConfig(21));
  CorpusManager manager(managed_gen.Generate(300));
  Corpus reference = fresh_gen.Generate(300);

  struct Shape {
    size_t add;
    size_t remove;
  };
  const Shape shapes[] = {
      {60, 0},   // pure append (fast path: untouched terms copied)
      {0, 40},   // pure removal
      {50, 30},  // mixed
      {25, 25},  // size-neutral churn
  };
  for (const Shape& shape : shapes) {
    const CorpusDelta managed_delta = MakeDelta(
        managed_gen, manager.Current()->corpus(), shape.add, shape.remove);
    const CorpusDelta fresh_delta =
        MakeDelta(fresh_gen, reference, shape.add, shape.remove);
    const SnapshotHandle snapshot = manager.Apply(managed_delta);
    reference = ApplyDelta(reference, fresh_delta);
    const InvertedIndex fresh(reference);
    ExpectIndexesBitwiseEqual(snapshot->index(), fresh);
    EXPECT_EQ(snapshot->Fingerprint(),
              CorpusSnapshot::Borrow(fresh)->Fingerprint());
  }
}

TEST(CorpusManagerTest, FingerprintIsContentNotHistory) {
  // Two managers reaching the same document set along different delta
  // sequences fingerprint identically; different sets do not.
  SyntheticCorpusGenerator gen_a(SmallConfig(5));
  SyntheticCorpusGenerator gen_b(SmallConfig(5));
  CorpusManager one_step(gen_a.Generate(200));
  CorpusManager two_steps(gen_b.Generate(200));

  CorpusDelta big = MakeDelta(gen_a, one_step.Current()->corpus(), 80, 0);
  const SnapshotHandle a = one_step.Apply(big);

  CorpusDelta first = MakeDelta(gen_b, two_steps.Current()->corpus(), 80, 0);
  CorpusDelta second;
  // Same 80 additions, split across two epochs.
  second.add.assign(first.add.begin() + 40, first.add.end());
  first.add.resize(40);
  two_steps.Apply(first);
  const SnapshotHandle b = two_steps.Apply(second);

  EXPECT_EQ(a->epoch(), 2u);
  EXPECT_EQ(b->epoch(), 3u);
  EXPECT_EQ(a->Fingerprint(), b->Fingerprint());

  CorpusDelta removal;
  removal.remove.push_back(b->corpus().documents().front().id());
  EXPECT_NE(two_steps.Apply(removal)->Fingerprint(), a->Fingerprint());
}

TEST(CorpusManagerTest, ShardedViewFollowsEveryEpoch) {
  SyntheticCorpusGenerator generator(SmallConfig(11));
  CorpusManager::Options options;
  options.num_shards = 3;
  CorpusManager manager(generator.Generate(200), options);
  ASSERT_TRUE(manager.Current()->has_sharded());
  ASSERT_TRUE(manager.Current()->has_index());

  const CorpusDelta delta =
      MakeDelta(generator, manager.Current()->corpus(), 40, 20);
  const SnapshotHandle snapshot = manager.Apply(delta);
  ASSERT_TRUE(snapshot->has_sharded());
  EXPECT_EQ(snapshot->sharded().NumDocuments(), snapshot->NumDocuments());
  EXPECT_EQ(snapshot->sharded().NumShards(), 3u);

  // The scatter-gather service over the manager answers bitwise like the
  // single-index engine over the same epoch.
  PlainSearchEngine plain(manager, 5);
  ShardedSearchService sharded(manager, 5);
  const KeywordQuery query =
      KeywordQuery::Parse(snapshot->corpus().vocabulary(), "sports game");
  const SearchResult a = plain.Search(query);
  const SearchResult b = sharded.Search(query);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  EXPECT_EQ(a.status, b.status);
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].doc, b.docs[i].doc);
    EXPECT_EQ(a.docs[i].score, b.docs[i].score);
  }
}

TEST(CorpusManagerTest, EmptyDeltaKeepsIndexBitwiseIdentical) {
  // Edge case: an empty delta after real epochs — no new epoch, and the
  // published index is still bitwise the fresh build of its corpus.
  SyntheticCorpusGenerator managed_gen(SmallConfig(19));
  SyntheticCorpusGenerator fresh_gen(SmallConfig(19));
  CorpusManager manager(managed_gen.Generate(200));
  Corpus reference = fresh_gen.Generate(200);

  const CorpusDelta managed_delta =
      MakeDelta(managed_gen, manager.Current()->corpus(), 30, 10);
  const CorpusDelta fresh_delta = MakeDelta(fresh_gen, reference, 30, 10);
  manager.Apply(managed_delta);
  reference = ApplyDelta(reference, fresh_delta);

  const SnapshotHandle before = manager.Current();
  const SnapshotHandle after = manager.Apply(CorpusDelta{});
  EXPECT_EQ(after.get(), before.get());
  EXPECT_EQ(manager.CurrentEpoch(), 2u);
  ExpectIndexesBitwiseEqual(after->index(), InvertedIndex(reference));
}

TEST(CorpusManagerTest, DeltaDeletingEveryPostingOfATermDropsTheTerm) {
  SyntheticCorpusGenerator managed_gen(SmallConfig(23));
  SyntheticCorpusGenerator fresh_gen(SmallConfig(23));
  CorpusManager manager(managed_gen.Generate(200));
  const Corpus reference = fresh_gen.Generate(200);

  // Victim: the first term of the first document; the delta removes every
  // document containing it, so its posting list must vanish entirely.
  const Corpus& initial = manager.Current()->corpus();
  const TermId victim = initial.documents()[0].terms()[0].term;
  CorpusDelta delta;
  for (const Document& doc : initial.documents()) {
    if (doc.Contains(victim)) delta.remove.push_back(doc.id());
  }
  ASSERT_FALSE(delta.remove.empty());

  const SnapshotHandle snapshot = manager.Apply(delta);
  EXPECT_EQ(snapshot->index().Postings(victim).size(), 0u);
  EXPECT_TRUE(snapshot->index().Postings(victim).Decode().empty());
  // The term is invisible through document-level stats of the new epoch.
  EXPECT_EQ(snapshot->corpus().CountWhere([victim](const Document& doc) {
    return doc.Contains(victim);
  }),
            0u);
  const Corpus fresh_corpus = ApplyDelta(reference, delta);
  ExpectIndexesBitwiseEqual(snapshot->index(), InvertedIndex(fresh_corpus));
}

TEST(CorpusManagerTest, ReAddingARemovedDocIdRestoresBitwiseEquality) {
  SyntheticCorpusGenerator managed_gen(SmallConfig(29));
  SyntheticCorpusGenerator fresh_gen(SmallConfig(29));
  CorpusManager manager(managed_gen.Generate(200));
  const Corpus reference = fresh_gen.Generate(200);

  const Document victim = manager.Current()->corpus().documents()[42];
  CorpusDelta removal;
  removal.remove.push_back(victim.id());
  const SnapshotHandle removed = manager.Apply(removal);
  EXPECT_FALSE(removed->Contains(victim.id()));

  // Re-add the identical document under its original DocId: the merged
  // index must be bitwise the fresh build — same dense local slot (local
  // ids are ascending-by-DocId), same postings, same stats.
  CorpusDelta readd;
  readd.add.push_back(victim);
  const SnapshotHandle restored = manager.Apply(readd);
  EXPECT_TRUE(restored->Contains(victim.id()));
  EXPECT_EQ(restored->NumDocuments(), 200u);
  const Corpus fresh_corpus = ApplyDelta(ApplyDelta(reference, removal), readd);
  const InvertedIndex fresh(fresh_corpus);
  ExpectIndexesBitwiseEqual(restored->index(), fresh);
  // Remove-then-readd restores the original content, so the content-only
  // fingerprint matches the untouched reference build.
  const InvertedIndex original(reference);
  EXPECT_EQ(restored->Fingerprint(),
            CorpusSnapshot::Borrow(original)->Fingerprint());
}

TEST(CorpusManagerTest, ApplyAsyncPublishesFromPool) {
  SyntheticCorpusGenerator generator(SmallConfig(13));
  ThreadPool pool(2);
  CorpusManager::Options options;
  options.pool = &pool;
  CorpusManager manager(generator.Generate(150), options);

  CorpusDelta delta = MakeDelta(generator, manager.Current()->corpus(), 25, 5);
  std::atomic<uint64_t> published_epoch{0};
  manager.ApplyAsync(std::move(delta), [&](SnapshotHandle snapshot) {
    published_epoch.store(snapshot->epoch(), std::memory_order_release);
  });
  while (published_epoch.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(published_epoch.load(), 2u);
  EXPECT_EQ(manager.CurrentEpoch(), 2u);
}

TEST(CorpusManagerTest, ConcurrentQueriesPinTheirEpochDuringPublishes) {
  // The TSan-facing case: reader threads search (pinning whatever epoch is
  // current) while the main thread publishes a chain of deltas. Every
  // answer must be internally consistent; no reader is ever invalidated.
  SyntheticCorpusGenerator generator(SmallConfig(17));
  CorpusManager manager(generator.Generate(400));
  PlainSearchEngine engine(manager, 5);
  const KeywordQuery query = KeywordQuery::Parse(
      manager.Current()->corpus().vocabulary(), "sports game");

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SearchResult result = engine.Search(query);
        ASSERT_LE(result.docs.size(), 5u);
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int e = 0; e < 8; ++e) {
    manager.Apply(
        MakeDelta(generator, manager.Current()->corpus(), 30, 15));
  }
  while (answered.load(std::memory_order_acquire) < 100) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(manager.CurrentEpoch(), 9u);
}

}  // namespace
}  // namespace asup
