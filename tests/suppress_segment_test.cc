#include "asup/suppress/segment.h"

#include <cmath>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(SegmentTest, ExactPowerIsSegmentBottom) {
  IndistinguishableSegment segment(1024, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.0);
  EXPECT_DOUBLE_EQ(segment.segment_low(), 1024.0);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2048.0);
}

TEST(SegmentTest, MidSegment) {
  IndistinguishableSegment segment(1536, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.5);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2048.0);
}

TEST(SegmentTest, JustBelowBoundary) {
  IndistinguishableSegment segment(2047, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_NEAR(segment.mu(), 2047.0 / 1024.0, 1e-12);
}

TEST(SegmentTest, CorpusOfOne) {
  IndistinguishableSegment segment(1, 2.0);
  EXPECT_EQ(segment.segment_index(), 0);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.0);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2.0);
}

TEST(SegmentTest, DerivedProbabilities) {
  IndistinguishableSegment segment(1536, 2.0);
  EXPECT_DOUBLE_EQ(segment.edge_keep_probability(), 1.5 / 2.0);
  EXPECT_DOUBLE_EQ(segment.lhs_keep_fraction(), 1.0 / 1.5);
}

TEST(SegmentTest, GammaFive) {
  IndistinguishableSegment segment(10000, 5.0);
  // 5^5 = 3125 <= 10000 < 5^6 = 15625.
  EXPECT_EQ(segment.segment_index(), 5);
  EXPECT_NEAR(segment.mu(), 10000.0 / 3125.0, 1e-12);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 15625.0);
}

TEST(SegmentTest, GammaTen) {
  IndistinguishableSegment segment(99000, 10.0);
  EXPECT_EQ(segment.segment_index(), 4);
  EXPECT_NEAR(segment.mu(), 9.9, 1e-9);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 100000.0);
}

TEST(SegmentTest, NonIntegerGamma) {
  IndistinguishableSegment segment(10, 1.5);
  // 1.5^5 = 7.59 <= 10 < 1.5^6 = 11.39.
  EXPECT_EQ(segment.segment_index(), 5);
  EXPECT_NEAR(segment.mu(), 10.0 / std::pow(1.5, 5), 1e-9);
}

class SegmentSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(SegmentSweepTest, InvariantsHold) {
  const auto [n, gamma] = GetParam();
  IndistinguishableSegment segment(n, gamma);
  // μ ∈ [1, γ).
  EXPECT_GE(segment.mu(), 1.0);
  EXPECT_LT(segment.mu(), gamma + 1e-9);
  // n = μ · γ^i.
  EXPECT_NEAR(segment.mu() * segment.segment_low(),
              static_cast<double>(n), 1e-6 * static_cast<double>(n) + 1e-9);
  // Segment brackets n.
  EXPECT_LE(segment.segment_low(), static_cast<double>(n) + 1e-9);
  EXPECT_GT(segment.segment_high(), static_cast<double>(n) * (1 - 1e-12));
  // Derived rates are valid probabilities/fractions.
  EXPECT_GT(segment.edge_keep_probability(), 0.0);
  EXPECT_LE(segment.edge_keep_probability(), 1.0 + 1e-9);
  EXPECT_GT(segment.lhs_keep_fraction(), 0.0);
  EXPECT_LE(segment.lhs_keep_fraction(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentSweepTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 7, 100, 1000, 1024,
                                                 4097, 50000, 1048576),
                       ::testing::Values(1.5, 2.0, 3.0, 5.0, 10.0)));

}  // namespace
}  // namespace asup
