#include "asup/suppress/segment.h"

#include <cmath>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(SegmentTest, ExactPowerIsSegmentBottom) {
  IndistinguishableSegment segment(1024, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.0);
  EXPECT_DOUBLE_EQ(segment.segment_low(), 1024.0);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2048.0);
}

TEST(SegmentTest, MidSegment) {
  IndistinguishableSegment segment(1536, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.5);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2048.0);
}

TEST(SegmentTest, JustBelowBoundary) {
  IndistinguishableSegment segment(2047, 2.0);
  EXPECT_EQ(segment.segment_index(), 10);
  EXPECT_NEAR(segment.mu(), 2047.0 / 1024.0, 1e-12);
}

TEST(SegmentTest, CorpusOfOne) {
  IndistinguishableSegment segment(1, 2.0);
  EXPECT_EQ(segment.segment_index(), 0);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.0);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 2.0);
}

TEST(SegmentTest, DerivedProbabilities) {
  IndistinguishableSegment segment(1536, 2.0);
  EXPECT_DOUBLE_EQ(segment.edge_keep_probability(), 1.5 / 2.0);
  EXPECT_DOUBLE_EQ(segment.lhs_keep_fraction(), 1.0 / 1.5);
}

TEST(SegmentTest, GammaFive) {
  IndistinguishableSegment segment(10000, 5.0);
  // 5^5 = 3125 <= 10000 < 5^6 = 15625.
  EXPECT_EQ(segment.segment_index(), 5);
  EXPECT_NEAR(segment.mu(), 10000.0 / 3125.0, 1e-12);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 15625.0);
}

TEST(SegmentTest, GammaTen) {
  IndistinguishableSegment segment(99000, 10.0);
  EXPECT_EQ(segment.segment_index(), 4);
  EXPECT_NEAR(segment.mu(), 9.9, 1e-9);
  EXPECT_DOUBLE_EQ(segment.segment_high(), 100000.0);
}

TEST(SegmentTest, LargeExactPowerIsSegmentBottom) {
  // Regression: n = γ^i at large i. 7^22 ≈ 3.9e18 exceeds 2^53, where the
  // old repeated double multiplication (with its 1e-9 slack test) drifted
  // and could misclassify the exact power — off-by-one segment index or
  // μ marginally above γ. The uint64 fast path must land exactly.
  uint64_t n = 1;
  for (int i = 0; i < 22; ++i) n *= 7;
  IndistinguishableSegment segment(n, 7.0);
  EXPECT_EQ(segment.segment_index(), 22);
  EXPECT_DOUBLE_EQ(segment.mu(), 1.0);
  EXPECT_DOUBLE_EQ(segment.segment_low(), static_cast<double>(n));
}

TEST(SegmentTest, LargeExactPowersOfTwoAcrossExponents) {
  // Powers of two are exact in double space, so both the index and μ = 1
  // must be exact for every exponent up to near the uint64 limit.
  for (int i = 1; i <= 62; ++i) {
    const uint64_t n = uint64_t{1} << i;
    IndistinguishableSegment segment(n, 2.0);
    EXPECT_EQ(segment.segment_index(), i) << "n = 2^" << i;
    EXPECT_DOUBLE_EQ(segment.mu(), 1.0) << "n = 2^" << i;
  }
}

TEST(SegmentTest, JustBelowLargePowerStaysInLowerSegment) {
  // n = 7^22 − 1 sits at the very top of segment 21; μ must stay < γ.
  uint64_t n = 1;
  for (int i = 0; i < 22; ++i) n *= 7;
  IndistinguishableSegment segment(n - 1, 7.0);
  EXPECT_EQ(segment.segment_index(), 21);
  EXPECT_GE(segment.mu(), 1.0);
  EXPECT_LT(segment.mu(), 7.0);
  EXPECT_GT(segment.edge_keep_probability(), 0.0);
  EXPECT_LE(segment.edge_keep_probability(), 1.0);
}

TEST(SegmentTest, NonIntegerGamma) {
  IndistinguishableSegment segment(10, 1.5);
  // 1.5^5 = 7.59 <= 10 < 1.5^6 = 11.39.
  EXPECT_EQ(segment.segment_index(), 5);
  EXPECT_NEAR(segment.mu(), 10.0 / std::pow(1.5, 5), 1e-9);
}

TEST(SegmentIndexOfTest, MatchesConstructorAtAndAroundExactPowers) {
  // Regression for the segment-probe boundary drift: the probe's index
  // must come from the same multiply loop as the segment itself, never
  // trunc(log n / log γ) — the log ratio lands a hair below the integer at
  // exact powers (e.g. log(1000)/log(10) = 2.9999999999999996) and reports
  // the segment below. Probe index == segment_index() of an equally-sized
  // corpus, at the boundary and on both sides of it.
  for (const double gamma : {2.0, 5.0, 10.0}) {
    uint64_t power = 1;
    const auto g = static_cast<uint64_t>(gamma);
    for (int i = 1; i <= 12; ++i) {
      power *= g;
      for (const uint64_t n : {power - 1, power, power + 1}) {
        const IndistinguishableSegment segment(n, gamma);
        EXPECT_EQ(IndistinguishableSegment::IndexOf(n, gamma),
                  segment.segment_index())
            << "n = " << n << ", gamma = " << gamma;
      }
    }
  }
}

TEST(SegmentIndexOfTest, KnownLogRatioFailureCases) {
  // The concrete truncation cases the log-ratio arithmetic got wrong:
  // each n is an exact power γ^i whose double log-ratio rounds down.
  EXPECT_EQ(IndistinguishableSegment::IndexOf(1000, 10.0), 3);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(125, 5.0), 3);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(3125, 5.0), 5);
  // And the trivial anchors.
  EXPECT_EQ(IndistinguishableSegment::IndexOf(1, 10.0), 0);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(9, 10.0), 0);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(10, 10.0), 1);
}

TEST(SegmentIndexOfTest, LargeCountsUseExactIntegerPath) {
  // Near the uint64 ceiling the double loop would drift; the exact-γ fast
  // path must still agree with the constructor.
  uint64_t n = 1;
  for (int i = 0; i < 22; ++i) n *= 7;  // 7^22 > 2^53
  EXPECT_EQ(IndistinguishableSegment::IndexOf(n, 7.0), 22);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(n - 1, 7.0), 21);
  EXPECT_EQ(IndistinguishableSegment::IndexOf(uint64_t{1} << 62, 2.0), 62);
}

TEST(SegmentIndexOfTest, NonIntegerGammaAgreesWithConstructor) {
  for (const size_t n : {1u, 2u, 7u, 10u, 100u, 4097u, 50000u}) {
    const IndistinguishableSegment segment(n, 1.5);
    EXPECT_EQ(IndistinguishableSegment::IndexOf(n, 1.5),
              segment.segment_index())
        << "n = " << n;
  }
}

class SegmentSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(SegmentSweepTest, InvariantsHold) {
  const auto [n, gamma] = GetParam();
  IndistinguishableSegment segment(n, gamma);
  // μ ∈ [1, γ).
  EXPECT_GE(segment.mu(), 1.0);
  EXPECT_LT(segment.mu(), gamma + 1e-9);
  // n = μ · γ^i.
  EXPECT_NEAR(segment.mu() * segment.segment_low(),
              static_cast<double>(n), 1e-6 * static_cast<double>(n) + 1e-9);
  // Segment brackets n.
  EXPECT_LE(segment.segment_low(), static_cast<double>(n) + 1e-9);
  EXPECT_GT(segment.segment_high(), static_cast<double>(n) * (1 - 1e-12));
  // Derived rates are valid probabilities/fractions.
  EXPECT_GT(segment.edge_keep_probability(), 0.0);
  EXPECT_LE(segment.edge_keep_probability(), 1.0 + 1e-9);
  EXPECT_GT(segment.lhs_keep_fraction(), 0.0);
  EXPECT_LE(segment.lhs_keep_fraction(), 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentSweepTest,
    ::testing::Combine(::testing::Values<size_t>(1, 2, 3, 7, 100, 1000, 1024,
                                                 4097, 50000, 1048576),
                       ::testing::Values(1.5, 2.0, 3.0, 5.0, 10.0)));

}  // namespace
}  // namespace asup
