#include <gtest/gtest.h>

#include <cmath>

#include "asup/attack/brute_force.h"
#include "asup/attack/dynamic_est.h"
#include "asup/attack/stratified_est.h"
#include "asup/attack/unbiased_est.h"
#include "attack_test_util.h"

namespace asup {
namespace {

using testing_util::MakePool;
using testing_util::MakeRig;
using testing_util::RecallableCount;
using testing_util::Rig;

// On a static corpus the dynamic estimator is just another pool estimator:
// one ObserveEpoch must agree with the static estimators and with the
// recallable-count ground truth they are all unbiased for.
TEST(AttackDynamicPropertiesTest, AgreesWithStaticEstimatorsOnStaticCorpus) {
  const Rig rig = MakeRig(400, 50, /*seed=*/19, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);
  ASSERT_GT(recallable, 300.0);

  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = FetchFrom(*rig.corpus);

  DynamicEstimator dynamic(pool, aggregate, fetcher);
  // A budget generous enough for a full census sweep (every slot probed
  // plus its second-round trials), so every first-contact answer counts.
  const DynamicEpochPoint point = dynamic.ObserveEpoch(*rig.engine, 200000);
  // Census pass: the only error is second-round sampling noise.
  EXPECT_NEAR(point.estimate, recallable, 0.10 * recallable);
  EXPECT_EQ(point.answers_changed, dynamic.maintained_size());

  UnbiasedEstimator::Options unbiased_options;
  unbiased_options.seed = 5;
  UnbiasedEstimator unbiased(pool, aggregate, fetcher, unbiased_options);
  const double unbiased_estimate =
      unbiased.Run(*rig.engine, 40000, 10000).back().estimate;
  EXPECT_NEAR(point.estimate, unbiased_estimate, 0.30 * recallable);

  StratifiedEstimator stratified(pool, aggregate, fetcher);
  const double stratified_estimate =
      stratified.Run(*rig.engine, 40000, 10000).back().estimate;
  EXPECT_NEAR(point.estimate, stratified_estimate, 0.30 * recallable);
}

// The brute-force crawl can only lower-bound what the pool can reach: its
// tally is capped by the recallable count, which in turn anchors both the
// dynamic and the static estimates from below.
TEST(AttackDynamicPropertiesTest, BruteForceBoundsTheEstimatesFromBelow) {
  const Rig rig = MakeRig(400, 50, /*seed=*/19, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);

  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = FetchFrom(*rig.corpus);

  BruteForceCrawler crawler(pool, aggregate, fetcher);
  const double crawled = crawler.Run(*rig.engine, 4000, 1000).back().estimate;
  EXPECT_LE(crawled, recallable + 1e-9);

  DynamicEstimator dynamic(pool, aggregate, fetcher);
  const double dynamic_estimate =
      dynamic.ObserveEpoch(*rig.engine, 40000).estimate;
  // The crawl tally cannot exceed an (accurate) estimate of the recallable
  // set by more than the estimator's sampling noise.
  EXPECT_LE(crawled, dynamic_estimate * 1.15);
}

// Metamorphic anchor: observing the same static snapshot twice changes
// nothing — no answer drifts, and with drift-correction refresh disabled
// the second estimate reuses every cached weight bit-for-bit.
TEST(AttackDynamicPropertiesTest, RepeatEpochOnStaticCorpusIsAFixpoint) {
  const Rig rig = MakeRig(300, 50, /*seed=*/23, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  DynamicEstimatorOptions options;
  options.refresh_fraction = 0.0;
  DynamicEstimator dynamic(pool, AggregateQuery::Count(),
                           FetchFrom(*rig.corpus), options);
  const DynamicEpochPoint first = dynamic.ObserveEpoch(*rig.engine, 40000);
  const DynamicEpochPoint second = dynamic.ObserveEpoch(*rig.engine, 40000);
  EXPECT_EQ(second.answers_changed, 0u);
  EXPECT_EQ(second.estimate, first.estimate);
  EXPECT_EQ(second.delta_estimate, 0.0);
  // Unchanged answers cost exactly one interface query each.
  EXPECT_EQ(second.queries_spent, dynamic.maintained_size());
}

// refresh_count = ⌈fraction·maintained⌉ at the edges: a tiny nonzero
// fraction still rotates at least one drift-correction slot per epoch
// (the additive-fudge arithmetic it replaced computed 0 and silently
// disabled the rotation), and fraction 1.0 re-probes every slot.
TEST(AttackDynamicPropertiesTest, RefreshFractionEdgeCases) {
  const Rig rig = MakeRig(300, 50, /*seed=*/23, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  const DocFetcher fetcher = FetchFrom(*rig.corpus);
  const AggregateQuery aggregate = AggregateQuery::Count();

  const auto second_epoch = [&](double fraction) {
    DynamicEstimatorOptions options;
    options.refresh_fraction = fraction;
    DynamicEstimator dynamic(pool, aggregate, fetcher, options);
    dynamic.ObserveEpoch(*rig.engine, 40000);
    return dynamic.ObserveEpoch(*rig.engine, 40000);
  };

  DynamicEstimatorOptions probe_options;
  DynamicEstimator sizer(pool, aggregate, fetcher, probe_options);
  const uint64_t maintained = sizer.maintained_size();
  ASSERT_GT(maintained, 0u);

  // fraction = 0.0: nothing re-probed on an unchanged corpus.
  EXPECT_EQ(second_epoch(0.0).queries_spent, maintained);

  // Tiny nonzero fraction: ⌈ε·m⌉ = 1 — the rotation must not collapse to
  // zero slots, or cached weights would never be drift-corrected.
  const DynamicEpochPoint tiny = second_epoch(1e-12);
  EXPECT_EQ(tiny.answers_changed, 0u);
  EXPECT_GT(tiny.queries_spent, maintained);

  // fraction = 1.0: every slot re-probed — second-round trials on top of
  // the per-slot first-round reissue (empty answers alone cost nothing
  // extra, but a census-sized refresh dwarfs the single-slot rotation).
  const DynamicEpochPoint full = second_epoch(1.0);
  EXPECT_EQ(full.answers_changed, 0u);
  EXPECT_GT(full.queries_spent, tiny.queries_spent);
}

// A query budget smaller than a full sweep must degrade variance, not
// correctness: the rotation normalizes over the slots it could afford.
TEST(AttackDynamicPropertiesTest, BudgetConstrainedEpochStaysUnbiased) {
  const Rig rig = MakeRig(400, 50, /*seed=*/19, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);

  DynamicEstimator dynamic(pool, AggregateQuery::Count(),
                           FetchFrom(*rig.corpus));
  const DynamicEpochPoint point = dynamic.ObserveEpoch(*rig.engine, 3000);
  EXPECT_LE(point.queries_spent, 3000u);
  EXPECT_LT(point.queries_spent, dynamic.maintained_size() * 2);
  EXPECT_NEAR(point.estimate, recallable, 0.35 * recallable);
}

// Subsampled maintained pools estimate the same quantity as the census,
// with more noise — and resampling is deterministic in the seed.
TEST(AttackDynamicPropertiesTest, SubsampledPoolTracksCensus) {
  const Rig rig = MakeRig(400, 50, /*seed=*/19, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);

  DynamicEstimatorOptions options;
  options.maintained_pool_size = pool.size() / 3;
  DynamicEstimator subsampled(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus), options);
  EXPECT_EQ(subsampled.maintained_size(), pool.size() / 3);
  const DynamicEpochPoint point = subsampled.ObserveEpoch(*rig.engine, 40000);
  EXPECT_NEAR(point.estimate, recallable, 0.5 * recallable);
}

}  // namespace
}  // namespace asup
