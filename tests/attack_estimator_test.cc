#include <memory>

#include <gtest/gtest.h>

#include <cmath>

#include "asup/attack/brute_force.h"
#include "asup/engine/access_policy.h"
#include "asup/attack/stratified_est.h"
#include "asup/attack/unbiased_est.h"
#include "attack_test_util.h"

namespace asup {
namespace {

using testing_util::MakePool;
using testing_util::MakeRig;
using testing_util::RecallableCount;
using testing_util::Rig;

TEST(UnbiasedEstTest, EstimatesCountOnUndefendedEngine) {
  Rig rig = MakeRig(400, 50, /*seed=*/19, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);
  ASSERT_GT(recallable, 300.0);

  UnbiasedEstimator::Options options;
  options.seed = 5;
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus), options);
  const auto points = estimator.Run(*rig.engine, 40000, 10000);
  ASSERT_FALSE(points.empty());
  const double estimate = points.back().estimate;
  EXPECT_NEAR(estimate, recallable, 0.3 * recallable);
}

TEST(UnbiasedEstTest, TrajectoryHasRequestedCadence) {
  Rig rig = MakeRig(150, 50, /*seed=*/20, /*held_out_size=*/150);
  const QueryPool pool = MakePool(rig);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  const auto points = estimator.Run(*rig.engine, 3000, 500);
  ASSERT_GE(points.size(), 6u);
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    EXPECT_EQ(points[i].queries_issued, 500 * (i + 1));
  }
  EXPECT_GE(points.back().queries_issued, 3000u);
}

TEST(UnbiasedEstTest, RespectsQueryBudget) {
  Rig rig = MakeRig(150, 50, /*seed=*/21, /*held_out_size=*/150);
  const QueryPool pool = MakePool(rig);
  QueryCountingService counting(*rig.engine);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  estimator.Run(counting, 2000, 1000);
  EXPECT_LE(counting.queries_issued(), 2000u + 1);
}

TEST(UnbiasedEstTest, SumAggregateScalesWithLength) {
  Rig rig = MakeRig(300, 50, /*seed=*/22, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  UnbiasedEstimator count_est(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  UnbiasedEstimator sum_est(pool, AggregateQuery::SumLength(),
                            FetchFrom(*rig.corpus));
  const double count = count_est.Run(*rig.engine, 20000, 20000).back().estimate;
  const double sum = sum_est.Run(*rig.engine, 20000, 20000).back().estimate;
  const double avg_length =
      static_cast<double>(rig.corpus->TotalLength()) /
      static_cast<double>(rig.corpus->size());
  // sum/count should be near the mean document length.
  EXPECT_GT(sum, count);
  EXPECT_NEAR(sum / count, avg_length, 0.6 * avg_length);
}

TEST(UnbiasedEstTest, DeterministicForSeed) {
  Rig rig = MakeRig(150, 50, /*seed=*/23, /*held_out_size=*/150);
  const QueryPool pool = MakePool(rig);
  UnbiasedEstimator::Options options;
  options.seed = 77;
  UnbiasedEstimator a(pool, AggregateQuery::Count(), FetchFrom(*rig.corpus),
                      options);
  UnbiasedEstimator b(pool, AggregateQuery::Count(), FetchFrom(*rig.corpus),
                      options);
  const auto pa = a.Run(*rig.engine, 2000, 500);
  const auto pb = b.Run(*rig.engine, 2000, 500);
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].estimate, pb[i].estimate);
  }
}

TEST(StratifiedEstTest, StrataPartitionThePool) {
  Rig rig = MakeRig(200, 50, /*seed=*/24, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  StratifiedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus));
  size_t total = 0;
  for (size_t s = 0; s < estimator.NumStrata(); ++s) {
    total += estimator.Stratum(s).size();
  }
  EXPECT_EQ(total, pool.size());
  EXPECT_GE(estimator.NumStrata(), 2u);
  EXPECT_LE(estimator.NumStrata(), 10u);
}

TEST(StratifiedEstTest, StrataOrderedByDf) {
  Rig rig = MakeRig(200, 50, /*seed=*/25, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  StratifiedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus));
  // Max df of stratum s must be below min df of stratum s+2 (geometric
  // buckets are contiguous).
  for (size_t s = 0; s + 1 < estimator.NumStrata(); ++s) {
    uint32_t max_df = 0;
    for (uint32_t qi : estimator.Stratum(s)) {
      max_df = std::max(max_df, pool.SampleDf(qi));
    }
    uint32_t min_df_next = UINT32_MAX;
    for (uint32_t qi : estimator.Stratum(s + 1)) {
      min_df_next = std::min(min_df_next, pool.SampleDf(qi));
    }
    EXPECT_LE(max_df, min_df_next * 2);
  }
}

TEST(StratifiedEstTest, EstimatesCountOnUndefendedEngine) {
  Rig rig = MakeRig(400, 50, /*seed=*/26, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  const double recallable = RecallableCount(rig, pool);
  StratifiedEstimator::Options options;
  options.seed = 6;
  StratifiedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus), options);
  const auto points = estimator.Run(*rig.engine, 40000, 10000);
  EXPECT_NEAR(points.back().estimate, recallable, 0.35 * recallable);
}

TEST(BruteForceTest, CrawlsDistinctDocsAndLowerBounds) {
  Rig rig = MakeRig(500, 5, /*seed=*/27, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  BruteForceCrawler crawler(pool, AggregateQuery::Count(),
                            FetchFrom(*rig.corpus));
  const auto points = crawler.Run(*rig.engine, 300, 100);
  const double estimate = points.back().estimate;
  EXPECT_EQ(estimate, static_cast<double>(crawler.NumCrawledDocs()));
  // With k = 5 and 300 queries, at most 1500 docs; and strictly fewer than
  // the corpus (overlap + overflow truncation).
  EXPECT_LE(estimate, 1500.0);
  EXPECT_GT(estimate, 0.0);
  EXPECT_LT(estimate, 500.0);
}

TEST(UnbiasedEstTest, SurvivesRateLimitedInterface) {
  // Failure injection: the engine starts refusing mid-attack (the §2.1
  // quota). The estimator must finish without crashing and report a
  // finite (degraded) estimate.
  Rig rig = MakeRig(300, 5, /*seed=*/29, /*held_out_size=*/200);
  const QueryPool pool = MakePool(rig);
  AccessPolicy policy;
  policy.queries_per_period = 150;
  policy.block_periods = 0;  // blocked forever once exceeded
  RateLimitedService limited(*rig.engine, policy);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  const auto points = estimator.Run(limited, 2000, 500);
  ASSERT_FALSE(points.empty());
  EXPECT_TRUE(std::isfinite(points.back().estimate));
  EXPECT_GE(points.back().estimate, 0.0);
}

TEST(UnbiasedEstTest, EmptyPoolYieldsZero) {
  Rig rig = MakeRig(100, 5, /*seed=*/30, /*held_out_size=*/50);
  QueryPool::Options options;
  options.max_df_fraction = 0.0;  // filters out everything
  QueryPool pool(*rig.held_out, options);
  ASSERT_EQ(pool.size(), 0u);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  const auto points = estimator.Run(*rig.engine, 100, 50);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points.back().estimate, 0.0);
}

TEST(StratifiedEstTest, EmptyPoolYieldsZero) {
  Rig rig = MakeRig(100, 5, /*seed=*/31, /*held_out_size=*/50);
  QueryPool::Options options;
  options.max_df_fraction = 0.0;
  QueryPool pool(*rig.held_out, options);
  StratifiedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus));
  const auto points = estimator.Run(*rig.engine, 100, 50);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points.back().estimate, 0.0);
}

TEST(StratifiedEstTest, SurvivesRateLimitedInterface) {
  Rig rig = MakeRig(300, 5, /*seed=*/32, /*held_out_size=*/200);
  const QueryPool pool = MakePool(rig);
  AccessPolicy policy;
  policy.queries_per_period = 100;
  policy.block_periods = 0;
  RateLimitedService limited(*rig.engine, policy);
  StratifiedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus));
  const auto points = estimator.Run(limited, 1500, 500);
  ASSERT_FALSE(points.empty());
  EXPECT_TRUE(std::isfinite(points.back().estimate));
}

TEST(BruteForceTest, MonotoneTrajectory) {
  Rig rig = MakeRig(300, 5, /*seed=*/28, /*held_out_size=*/200);
  const QueryPool pool = MakePool(rig);
  BruteForceCrawler crawler(pool, AggregateQuery::Count(),
                            FetchFrom(*rig.corpus));
  const auto points = crawler.Run(*rig.engine, 200, 50);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].estimate, points[i - 1].estimate);
  }
}

}  // namespace
}  // namespace asup
