// End-to-end reproduction checks: the headline claims of the paper, at
// test scale.
//
// The suppression experiments run in the paper's regime: the corpus is
// large relative to the adversary's query budget, so the document-
// activation transient (which is where AS-SIMPLE's protection lives, per
// Theorem 4.1's bound on c) covers the whole attack. Both corpora sit in
// the same indistinguishable segment [16384, 32768): the small one near
// the bottom (μ ≈ 1.04), the large one near the top (μ ≈ 1.98).

#include <memory>

#include <gtest/gtest.h>

#include "asup/attack/unbiased_est.h"
#include "asup/eval/experiment.h"
#include "asup/eval/utility.h"
#include "asup/workload/aol_like.h"
#include "asup/workload/query_log.h"

namespace asup {
namespace {

constexpr size_t kSmallSize = 17000;
constexpr size_t kLargeSize = 32500;
constexpr uint64_t kBudget = 3000;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ExperimentEnv::Options options;
    options.universe_size = 36000;
    options.held_out_size = 6000;
    options.seed = 2012;
    env_ = new ExperimentEnv(options);
    small_ = new Corpus(env_->SampleCorpus(kSmallSize, 1));
    large_ = new Corpus(env_->SampleCorpus(kLargeSize, 2));
  }

  static void TearDownTestSuite() {
    delete large_;
    delete small_;
    delete env_;
    large_ = nullptr;
    small_ = nullptr;
    env_ = nullptr;
  }

  double RunUnbiased(SearchService& service, const Corpus& corpus,
                     uint64_t seed) {
    UnbiasedEstimator::Options options;
    options.seed = seed;
    UnbiasedEstimator estimator(env_->pool(), AggregateQuery::Count(),
                                FetchFrom(corpus), options);
    return estimator.Run(service, kBudget, kBudget).back().estimate;
  }

  static ExperimentEnv* env_;
  static Corpus* small_;
  static Corpus* large_;
};

ExperimentEnv* IntegrationTest::env_ = nullptr;
Corpus* IntegrationTest::small_ = nullptr;
Corpus* IntegrationTest::large_ = nullptr;

TEST_F(IntegrationTest, UndefendedCorporaAreDistinguishable) {
  auto small_stack = EngineStack::Plain(*small_, 5);
  auto large_stack = EngineStack::Plain(*large_, 5);
  const double est_small = RunUnbiased(small_stack.service(), *small_, 3);
  const double est_large = RunUnbiased(large_stack.service(), *large_, 3);
  // The estimates reflect the 17000 vs 32500 sizes.
  EXPECT_GT(est_large, 1.4 * est_small);
}

TEST_F(IntegrationTest, AsSimpleMakesCorporaIndistinguishable) {
  AsSimpleConfig config;
  config.gamma = 2.0;
  auto small_stack = EngineStack::WithSimple(*small_, 5, config);
  auto large_stack = EngineStack::WithSimple(*large_, 5, config);
  const double est_small = RunUnbiased(small_stack.service(), *small_, 4);
  const double est_large = RunUnbiased(large_stack.service(), *large_, 4);
  // Both emulate the segment top; the gap collapses.
  EXPECT_LT(est_large, 1.3 * est_small);
  EXPECT_GT(est_large, 0.6 * est_small);
  // And the small corpus's estimate is pushed far above its truth.
  EXPECT_GT(est_small, 1.25 * static_cast<double>(kSmallSize));
}

TEST_F(IntegrationTest, AsArbiMakesCorporaIndistinguishable) {
  AsArbiConfig config;
  config.simple.gamma = 2.0;
  auto small_stack = EngineStack::WithArbi(*small_, 5, config);
  auto large_stack = EngineStack::WithArbi(*large_, 5, config);
  const double est_small = RunUnbiased(small_stack.service(), *small_, 5);
  const double est_large = RunUnbiased(large_stack.service(), *large_, 5);
  EXPECT_LT(est_large, 1.3 * est_small);
  EXPECT_GT(est_large, 0.6 * est_small);
  EXPECT_GT(est_small, 1.25 * static_cast<double>(kSmallSize));
}

TEST_F(IntegrationTest, SumAggregateSuppressed) {
  const TermId sports = *env_->vocabulary().Lookup("sports");
  const auto aggregate = AggregateQuery::SumLengthContaining(sports);
  const double truth_small = aggregate.TrueValue(*small_);
  const double truth_large = aggregate.TrueValue(*large_);
  ASSERT_GT(truth_small, 0.0);
  ASSERT_GT(truth_large, 1.4 * truth_small);

  auto run = [&](SearchService& service, const Corpus& corpus) {
    UnbiasedEstimator::Options options;
    options.seed = 6;
    UnbiasedEstimator estimator(env_->pool(), aggregate, FetchFrom(corpus),
                                options);
    return estimator.Run(service, kBudget, kBudget).back().estimate;
  };

  AsSimpleConfig config;
  config.gamma = 2.0;
  auto small_stack = EngineStack::WithSimple(*small_, 5, config);
  auto large_stack = EngineStack::WithSimple(*large_, 5, config);
  const double est_small = run(small_stack.service(), *small_);
  const double est_large = run(large_stack.service(), *large_);
  // Defended SUM estimates no longer reveal the 1.9x gap. (SUM estimates
  // are noisier than COUNT — only documents containing the seed word
  // contribute — hence the wider tolerance.)
  EXPECT_LT(est_large, 1.6 * est_small);
  EXPECT_GT(est_small, truth_small);
}

TEST_F(IntegrationTest, UtilityStaysHighUnderAsArbi) {
  AolLikeConfig log_config;
  log_config.log_size = 1500;
  log_config.unique_queries = 500;
  AolLikeWorkload workload(*large_, log_config);

  auto reference = EngineStack::Plain(*large_, 5);
  AsArbiConfig config;
  auto defended = EngineStack::WithArbi(*large_, 5, config);
  const auto points = MeasureUtility(reference.service(), defended.service(),
                                     workload.log(), 500);
  const auto& final = points.back();
  // Paper Figure 6: recall above ~0.8, precision above ~0.9 for γ = 2.
  EXPECT_GT(final.recall, 0.6);
  EXPECT_GT(final.precision, 0.7);
  EXPECT_LT(final.rank_distance, 0.5);
}

TEST_F(IntegrationTest, MeasuredUtilityRespectsTheoremBounds) {
  AolLikeConfig log_config;
  log_config.log_size = 1000;
  log_config.unique_queries = 400;
  AolLikeWorkload workload(*large_, log_config);

  auto reference = EngineStack::Plain(*large_, 5);
  const WorkloadProfile profile =
      ProfileWorkload(reference.plain(), workload.log(), 2.0);

  AsSimpleConfig config;
  config.gamma = 2.0;
  auto defended = EngineStack::WithSimple(*large_, 5, config);
  const auto points = MeasureUtility(reference.service(), defended.service(),
                                     workload.log(), 500);
  const auto& final = points.back();
  // Theorem 4.2 gives lower bounds; allow small statistical slack.
  EXPECT_GE(final.recall, profile.RecallLowerBound(2.0) - 0.1);
  EXPECT_GE(final.precision, profile.PrecisionLowerBound(2.0) - 0.1);
}

TEST_F(IntegrationTest, AsArbiUtilityBeatsAsSimple) {
  // The paper's Figure 17-vs-6 comparison: virtual query processing
  // improves utility. The gap appears once the workload has enough
  // overlapping query families for AS-SIMPLE's document hiding to bite.
  AolLikeConfig log_config;
  log_config.log_size = 4500;
  log_config.unique_queries = 1500;
  AolLikeWorkload workload(*small_, log_config);

  auto ref1 = EngineStack::Plain(*small_, 5);
  auto ref2 = EngineStack::Plain(*small_, 5);
  AsSimpleConfig simple_config;
  auto with_simple = EngineStack::WithSimple(*small_, 5, simple_config);
  AsArbiConfig arbi_config;
  auto with_arbi = EngineStack::WithArbi(*small_, 5, arbi_config);

  const double recall_simple =
      MeasureUtility(ref1.service(), with_simple.service(), workload.log(),
                     1500)
          .back()
          .recall;
  const double recall_arbi =
      MeasureUtility(ref2.service(), with_arbi.service(), workload.log(),
                     1500)
          .back()
          .recall;
  EXPECT_GT(recall_arbi, recall_simple + 0.01);
}

}  // namespace
}  // namespace asup
