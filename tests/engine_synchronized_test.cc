#include "asup/engine/synchronized_service.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "asup/suppress/as_arbi.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

TEST(SynchronizedServiceTest, ForwardsAnswers) {
  Rig rig = MakeRig(300, 5);
  SynchronizedService synced(*rig.engine);
  const auto q = rig.Q("sports");
  EXPECT_EQ(synced.Search(q).DocIds(), rig.engine->Search(q).DocIds());
  EXPECT_EQ(synced.k(), rig.engine->k());
}

TEST(SynchronizedServiceTest, ConcurrentQueriesOnStatefulDefense) {
  // Hammer a (stateful) AS-ARBI engine from several threads through the
  // wrapper; afterwards the engine must still be consistent and
  // deterministic for re-issued queries.
  Rig rig = MakeRig(600, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  SynchronizedService synced(defended);

  const char* words[] = {"sports", "game", "team", "score", "league",
                         "coach", "season", "player"};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const auto q = rig.Q(words[(t + round) % 8]);
        const SearchResult result = synced.Search(q);
        if (result.docs.size() > 5) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Deterministic replay after the concurrent phase.
  for (const char* w : words) {
    const auto q = rig.Q(w);
    const auto a = synced.Search(q);
    const auto b = synced.Search(q);
    EXPECT_EQ(a.DocIds(), b.DocIds());
  }
}

TEST(SynchronizedServiceTest, ConcurrentThroughputMatchesSequentialAnswers) {
  // Every thread issues the same query set; since the wrapper serializes,
  // all threads must observe the same (cached, deterministic) answers.
  Rig rig = MakeRig(500, 5);
  AsArbiEngine defended(*rig.engine, AsArbiConfig{});
  SynchronizedService synced(defended);
  const auto q = rig.Q("sports game");
  const auto reference = synced.Search(q).DocIds();

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 25; ++round) {
        if (synced.Search(q).DocIds() != reference) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace asup
