#include "asup/util/hash.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(Mix64Test, Deterministic) { EXPECT_EQ(Mix64(42), Mix64(42)); }

TEST(Mix64Test, SpreadsNearbyInputs) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCombineTest, OrderMatters) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(HashCombineTest, Deterministic) {
  EXPECT_EQ(HashCombine(10, 20), HashCombine(10, 20));
}

TEST(HashStringTest, EmptyAndNonEmptyDiffer) {
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashStringTest, DistinctStringsDiffer) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(HashString("word" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(DeterministicCoinTest, SameInputsSameOutput) {
  DeterministicCoin coin(0xdead);
  EXPECT_EQ(coin.UniformDouble(1, 2), coin.UniformDouble(1, 2));
  EXPECT_EQ(coin.Accept(5, 6, 0.5), coin.Accept(5, 6, 0.5));
}

TEST(DeterministicCoinTest, DifferentKeysDisagreeSometimes) {
  DeterministicCoin a(1);
  DeterministicCoin b(2);
  int disagreements = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.Accept(i, 0, 0.5) != b.Accept(i, 0, 0.5)) ++disagreements;
  }
  // Two independent fair coins disagree about half the time.
  EXPECT_GT(disagreements, 350);
  EXPECT_LT(disagreements, 650);
}

TEST(DeterministicCoinTest, AcceptRateMatchesProbability) {
  DeterministicCoin coin(0xbeef);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    int accepted = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      accepted += coin.Accept(static_cast<uint64_t>(i), 7, p);
    }
    EXPECT_NEAR(static_cast<double>(accepted) / n, p, 0.015) << "p=" << p;
  }
}

TEST(DeterministicCoinTest, UniformDoubleInRange) {
  DeterministicCoin coin(123);
  for (uint64_t i = 0; i < 1000; ++i) {
    const double x = coin.UniformDouble(i, i * 3);
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(DeterministicCoinTest, EdgeIdentityMatters) {
  DeterministicCoin coin(99);
  // (a, b) and (b, a) should be independent coins.
  int diff = 0;
  for (uint64_t i = 1; i < 500; ++i) {
    if (coin.Accept(i, i + 1, 0.5) != coin.Accept(i + 1, i, 0.5)) ++diff;
  }
  EXPECT_GT(diff, 150);
}

}  // namespace
}  // namespace asup
