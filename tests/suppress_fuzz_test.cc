// Randomized property tests for the suppression engines. Each test draws
// rounds of (corpus, γ, k, query mix) from one seeded Rng and asserts the
// invariants the paper's algorithms promise for *every* input, rather than
// for hand-picked examples:
//
//   - an answer never exceeds k documents and only contains documents that
//     actually match the query (suppression hides, it never fabricates);
//   - an answer is empty exactly when the engine reports underflow;
//   - re-issuing a query returns the bitwise-identical answer (Section
//     2.1's deterministic-processing requirement);
//   - with the answer cache disabled, re-issues are *monotone*: once M(q)
//     is activated the keyed coins only thin the answer, and from the
//     second issue on the answer is a fixed point;
//   - two engine instances with identical corpus and key agree bitwise on
//     any query sequence.
//
// Everything is reproducible from kFuzzSeed; failures print the round.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/query.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/util/random.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

constexpr uint64_t kFuzzSeed = 0x5eed5eed5eedULL;

class SuppressFuzz : public ::testing::Test {
 protected:
  SuppressFuzz() : rng_(kFuzzSeed) {}

  /// A random corpus/engine rig with fuzzed size and k.
  Rig RandomRig() {
    const size_t corpus_size = rng_.UniformU64(200, 800);
    const size_t k = kChoicesK[rng_.UniformBelow(3)];
    return MakeRig(corpus_size, k, rng_.NextU64());
  }

  AsSimpleConfig RandomSimpleConfig() {
    AsSimpleConfig config;
    config.gamma = kChoicesGamma[rng_.UniformBelow(4)];
    config.secret_key = rng_.NextU64();
    return config;
  }

  /// A random 1-3 term query over the rig's vocabulary. Distinct sorted
  /// terms, so the canonical form is stable.
  KeywordQuery RandomQuery(const Rig& rig) {
    const Vocabulary& vocabulary = rig.corpus->vocabulary();
    const size_t num_terms = rng_.UniformU64(1, 3);
    std::vector<TermId> terms;
    for (const uint64_t t :
         rng_.SampleWithoutReplacement(vocabulary.size(), num_terms)) {
      terms.push_back(static_cast<TermId>(t));
    }
    std::sort(terms.begin(), terms.end());
    return KeywordQuery::FromTerms(vocabulary, terms);
  }

  std::vector<KeywordQuery> RandomQueries(const Rig& rig, size_t count) {
    std::vector<KeywordQuery> queries;
    queries.reserve(count);
    for (size_t i = 0; i < count; ++i) queries.push_back(RandomQuery(rig));
    return queries;
  }

  static std::vector<DocId> SortedMatchIds(const Rig& rig,
                                           const KeywordQuery& query) {
    std::vector<DocId> ids = rig.engine->MatchIds(query);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  static void ExpectWellFormed(const Rig& rig, const KeywordQuery& query,
                               const SearchResult& result, size_t k,
                               int round) {
    SCOPED_TRACE(::testing::Message()
                 << "round " << round << ", query '" << query.canonical()
                 << "'");
    EXPECT_LE(result.docs.size(), k);
    EXPECT_EQ(result.docs.empty(), result.status == QueryStatus::kUnderflow);
    const std::vector<DocId> matches = SortedMatchIds(rig, query);
    double previous_score = std::numeric_limits<double>::infinity();
    for (const ScoredDoc& scored : result.docs) {
      EXPECT_TRUE(
          std::binary_search(matches.begin(), matches.end(), scored.doc))
          << "answer contains non-matching doc " << scored.doc;
      EXPECT_LE(scored.score, previous_score) << "answer not rank-ordered";
      previous_score = scored.score;
    }
  }

  static void ExpectBitwiseEqual(const SearchResult& a, const SearchResult& b,
                                 int round) {
    ASSERT_EQ(a.status, b.status) << "round " << round;
    ASSERT_EQ(a.docs.size(), b.docs.size()) << "round " << round;
    for (size_t d = 0; d < a.docs.size(); ++d) {
      ASSERT_EQ(a.docs[d].doc, b.docs[d].doc) << "round " << round;
      ASSERT_EQ(a.docs[d].score, b.docs[d].score) << "round " << round;
    }
  }

  static constexpr size_t kChoicesK[3] = {3, 5, 10};
  static constexpr double kChoicesGamma[4] = {1.5, 2.0, 3.0, 5.0};

  Rng rng_;
};

TEST_F(SuppressFuzz, AsSimpleAnswersAreAlwaysWellFormed) {
  for (int round = 0; round < 5; ++round) {
    Rig rig = RandomRig();
    AsSimpleEngine engine(*rig.engine, RandomSimpleConfig());
    for (const auto& query : RandomQueries(rig, 60)) {
      ExpectWellFormed(rig, query, engine.Search(query), engine.k(), round);
    }
  }
}

TEST_F(SuppressFuzz, AsSimpleReissueIsBitwiseDeterministic) {
  for (int round = 0; round < 4; ++round) {
    Rig rig = RandomRig();
    AsSimpleEngine engine(*rig.engine, RandomSimpleConfig());
    const auto queries = RandomQueries(rig, 40);
    std::vector<SearchResult> first;
    for (const auto& query : queries) first.push_back(engine.Search(query));
    // Interleave the re-issues in reverse order: determinism must not
    // depend on the position of a query in the stream.
    for (size_t i = queries.size(); i-- > 0;) {
      ExpectBitwiseEqual(engine.Search(queries[i]), first[i], round);
    }
    EXPECT_EQ(engine.stats().cache_hits, queries.size());
  }
}

TEST_F(SuppressFuzz, AsSimpleTwinEnginesAgreeBitwise) {
  // Two engines built from the same seed and key are replicas: the keyed
  // per-edge coins make the whole suppression pipeline a deterministic
  // function of (corpus, key, query sequence).
  for (int round = 0; round < 4; ++round) {
    const size_t corpus_size = rng_.UniformU64(200, 800);
    const size_t k = kChoicesK[rng_.UniformBelow(3)];
    const uint64_t corpus_seed = rng_.NextU64();
    Rig rig_a = MakeRig(corpus_size, k, corpus_seed);
    Rig rig_b = MakeRig(corpus_size, k, corpus_seed);
    const AsSimpleConfig config = RandomSimpleConfig();
    AsSimpleEngine engine_a(*rig_a.engine, config);
    AsSimpleEngine engine_b(*rig_b.engine, config);
    for (const auto& query : RandomQueries(rig_a, 50)) {
      ExpectBitwiseEqual(engine_a.Search(query), engine_b.Search(query),
                         round);
    }
    EXPECT_EQ(engine_a.NumActivatedDocs(), engine_b.NumActivatedDocs());
  }
}

TEST_F(SuppressFuzz, AsSimpleReissuesThinMonotonically) {
  // With the cache off, the first issue activates all of M(q); every later
  // issue coin-filters the same activated set, so the answer can only
  // shrink once and is a fixed point from the second issue on.
  for (int round = 0; round < 4; ++round) {
    Rig rig = RandomRig();
    AsSimpleConfig config = RandomSimpleConfig();
    config.cache_answers = false;
    AsSimpleEngine engine(*rig.engine, config);
    for (const auto& query : RandomQueries(rig, 30)) {
      const SearchResult first = engine.Search(query);
      const SearchResult second = engine.Search(query);
      const SearchResult third = engine.Search(query);
      SCOPED_TRACE(::testing::Message()
                   << "round " << round << ", query '" << query.canonical()
                   << "'");
      EXPECT_LE(second.docs.size(), first.docs.size());
      ExpectBitwiseEqual(third, second, round);
      ExpectWellFormed(rig, query, second, engine.k(), round);
    }
  }
}

TEST_F(SuppressFuzz, AsArbiAnswersAreAlwaysWellFormed) {
  // AS-ARBI adds the virtual answer path; a virtual answer is drawn from
  // historic answers but must still be a rank-ordered subset of the new
  // query's own match set.
  for (int round = 0; round < 4; ++round) {
    const size_t corpus_size = rng_.UniformU64(400, 1200);
    const size_t k = kChoicesK[rng_.UniformBelow(3)];
    Rig rig = MakeTopicalRig(corpus_size, k, rng_.NextU64());
    AsArbiConfig config;
    config.simple = RandomSimpleConfig();
    config.cover_size = rng_.UniformU64(1, 8);
    config.cover_ratio = 0.5 + 0.5 * rng_.NextDouble();
    AsArbiEngine engine(*rig.engine, config);

    const auto queries = RandomQueries(rig, 80);
    std::vector<SearchResult> first;
    for (const auto& query : queries) {
      first.push_back(engine.Search(query));
      ExpectWellFormed(rig, query, first.back(), engine.k(), round);
    }
    // Determinism on re-issue, after arbitrary interleaved history growth.
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectBitwiseEqual(engine.Search(queries[i]), first[i], round);
    }
  }
}

TEST_F(SuppressFuzz, AsArbiTwinEnginesAgreeBitwise) {
  // The virtual-answer trigger, cover search, and history evolution must
  // all be deterministic functions of the query sequence.
  for (int round = 0; round < 3; ++round) {
    const size_t corpus_size = rng_.UniformU64(400, 1200);
    const size_t k = kChoicesK[rng_.UniformBelow(3)];
    const uint64_t corpus_seed = rng_.NextU64();
    Rig rig_a = MakeTopicalRig(corpus_size, k, corpus_seed);
    Rig rig_b = MakeTopicalRig(corpus_size, k, corpus_seed);
    AsArbiConfig config;
    config.simple = RandomSimpleConfig();
    AsArbiEngine engine_a(*rig_a.engine, config);
    AsArbiEngine engine_b(*rig_b.engine, config);
    for (const auto& query : RandomQueries(rig_a, 60)) {
      ExpectBitwiseEqual(engine_a.Search(query), engine_b.Search(query),
                         round);
    }
    EXPECT_EQ(engine_a.history().NumQueries(), engine_b.history().NumQueries());
    EXPECT_EQ(engine_a.stats().virtual_answers,
              engine_b.stats().virtual_answers);
  }
}

}  // namespace
}  // namespace asup
