// Tests for RunReport (src/asup/obs/run_report.h): per-stage percentile
// collection from a registry, the figure-facing percentile table, and the
// JSON summary benches embed into BENCH_*.json sidecars.

#include "asup/obs/run_report.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#if ASUP_METRICS_ENABLED

namespace asup {
namespace {

void ObserveStage(obs::MetricsRegistry& registry, const char* stage,
                  int64_t nanos, int repeats = 1) {
  obs::Histogram& histogram = registry.HistogramOf(
      std::string("asup_pipeline_stage_ns{stage=\"") + stage + "\"}",
      obs::LatencyBucketsNanos());
  for (int i = 0; i < repeats; ++i) histogram.Observe(nanos);
}

TEST(RunReport, CollectsOnlyStagesThatRan) {
  obs::MetricsRegistry registry;
  ObserveStage(registry, "match", 1000, 10);
  ObserveStage(registry, "hide", 4000, 10);
  registry.CounterOf("asup_suppress_docs_hidden_total").Add(3);
  registry.GaugeOf("asup_suppress_history_queries").Set(12.0);

  const obs::RunReport report = obs::RunReport::Collect(registry);
  ASSERT_EQ(report.stages().size(), obs::kNumStages);
  uint64_t stages_ran = 0;
  for (const obs::StageLatencySummary& stage : report.stages()) {
    if (stage.count == 0) continue;
    ++stages_ran;
    EXPECT_GT(stage.p50_ns, 0.0);
    EXPECT_LE(stage.p50_ns, stage.p95_ns);
    EXPECT_LE(stage.p95_ns, stage.p99_ns);
  }
  EXPECT_EQ(stages_ran, 2u);
  EXPECT_EQ(report.counters().at("asup_suppress_docs_hidden_total"), 3u);
  EXPECT_DOUBLE_EQ(report.gauges().at("asup_suppress_history_queries"),
                   12.0);
}

TEST(RunReport, StagePercentileTableHasOneColumnPerRanStage) {
  obs::MetricsRegistry registry;
  ObserveStage(registry, "match", 900);
  ObserveStage(registry, "hide", 1800);
  ObserveStage(registry, "trim", 450);
  ObserveStage(registry, "cover", 90'000);

  const CsvTable table =
      obs::RunReport::Collect(registry).StagePercentileTable();
  const std::vector<std::string>& columns = table.columns();
  ASSERT_EQ(columns.size(), 5u);
  EXPECT_EQ(columns[0], "percentile");
  // Stage order is the Stage enum order: match, hide, trim, cover.
  EXPECT_EQ(columns[1], "match_ns");
  EXPECT_EQ(columns[2], "hide_ns");
  EXPECT_EQ(columns[3], "trim_ns");
  EXPECT_EQ(columns[4], "cover_ns");
  ASSERT_EQ(table.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(table.At(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(table.At(1, 0), 95.0);
  EXPECT_DOUBLE_EQ(table.At(2, 0), 99.0);
  // The slow stage dominates: its p50 exceeds every other stage's p99.
  EXPECT_GT(table.At(0, 4), table.At(2, 1));
}

TEST(RunReport, EmptyRegistryYieldsPercentileRowsWithNoStageColumns) {
  obs::MetricsRegistry registry;
  const CsvTable table =
      obs::RunReport::Collect(registry).StagePercentileTable();
  EXPECT_EQ(table.NumColumns(), 1u);
  EXPECT_EQ(table.NumRows(), 3u);
}

TEST(RunReport, JsonEmbedsStagesCountersAndGauges) {
  obs::MetricsRegistry registry;
  ObserveStage(registry, "commit", 5000, 4);
  registry.CounterOf("asup_engine_cache_hits_total").Add(9);
  registry.GaugeOf("asup_engine_pool_queue_depth").Set(2.0);

  const std::string json = obs::RunReport::Collect(registry).Json();
  EXPECT_NE(json.find("\"stages\":{\"commit\":{\"count\":4"),
            std::string::npos);
  EXPECT_NE(json.find("\"asup_engine_cache_hits_total\":9"),
            std::string::npos);
  EXPECT_NE(json.find("\"asup_engine_pool_queue_depth\":2"),
            std::string::npos);
  // Counter names with labels must arrive escaped (valid JSON keys).
  registry.CounterOf("asup_x_total{kind=\"y\"}").Add(1);
  const std::string labelled = obs::RunReport::Collect(registry).Json();
  EXPECT_NE(labelled.find("\"asup_x_total{kind=\\\"y\\\"}\":1"),
            std::string::npos);
}

}  // namespace
}  // namespace asup

#else  // !ASUP_METRICS_ENABLED

// RunReport does not exist in the compiled-out build; the suite still has
// to link and pass.
TEST(RunReportCompiledOut, BuildsWithoutObsSymbols) { SUCCEED(); }

#endif  // ASUP_METRICS_ENABLED
