#include "asup/eval/rank_distance.h"

#include <gtest/gtest.h>

namespace asup {
namespace {

TEST(RankDistanceTest, IdenticalListsAreZero) {
  EXPECT_EQ(TopKKendallDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(RankDistanceTest, BothEmptyIsZero) {
  EXPECT_EQ(TopKKendallDistance({}, {}), 0.0);
}

TEST(RankDistanceTest, DisjointListsAreMaximal) {
  EXPECT_EQ(TopKKendallDistance({1, 2}, {3, 4}, 1.0), 1.0);
}

TEST(RankDistanceTest, ReversedListIsMaximalAmongPermutations) {
  const double reversed = TopKKendallDistance({1, 2, 3}, {3, 2, 1});
  EXPECT_EQ(reversed, 1.0);  // all 3 pairs inverted
}

TEST(RankDistanceTest, SingleSwap) {
  // One adjacent transposition in a 3-list: 1 of 3 pairs disagrees.
  EXPECT_NEAR(TopKKendallDistance({1, 2, 3}, {2, 1, 3}), 1.0 / 3.0, 1e-12);
}

TEST(RankDistanceTest, SymmetricInArguments) {
  const std::vector<DocId> a{1, 2, 3, 4};
  const std::vector<DocId> b{2, 5, 1};
  EXPECT_NEAR(TopKKendallDistance(a, b), TopKKendallDistance(b, a), 1e-12);
}

TEST(RankDistanceTest, MissingElementAgainstPrefix) {
  // b is a prefix of a: dropped elements were ranked below the kept ones,
  // consistent with their absence, so only both-missing pairs contribute.
  const double d = TopKKendallDistance({1, 2, 3, 4}, {1, 2}, 0.0);
  EXPECT_EQ(d, 0.0);
  const double with_penalty = TopKKendallDistance({1, 2, 3, 4}, {1, 2}, 0.5);
  // Exactly the pair {3,4} is missing from b together: 0.5 of 6 pairs.
  EXPECT_NEAR(with_penalty, 0.5 / 6.0, 1e-12);
}

TEST(RankDistanceTest, DroppingTheTopHurtsMore) {
  // Dropping the top-ranked doc contradicts list a's ordering against all
  // remaining docs.
  const double drop_top = TopKKendallDistance({1, 2, 3}, {2, 3}, 0.0);
  const double drop_bottom = TopKKendallDistance({1, 2, 3}, {1, 2}, 0.0);
  EXPECT_GT(drop_top, drop_bottom);
}

TEST(RankDistanceTest, InRange) {
  const std::vector<std::vector<DocId>> lists{
      {}, {1}, {1, 2}, {2, 1}, {3, 4, 5}, {1, 3, 5}, {5, 4, 3, 2, 1}};
  for (const auto& a : lists) {
    for (const auto& b : lists) {
      const double d = TopKKendallDistance(a, b);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
    }
  }
}

TEST(RankDistanceTest, PenaltyZeroVsOne) {
  // Penalty only affects both-missing pairs.
  const std::vector<DocId> a{1, 2, 3};
  const std::vector<DocId> b{1};
  const double p0 = TopKKendallDistance(a, b, 0.0);
  const double p1 = TopKKendallDistance(a, b, 1.0);
  EXPECT_LT(p0, p1);
}

}  // namespace
}  // namespace asup
