#include "asup/util/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "asup/util/random.h"

namespace asup {
namespace {

TEST(StreamingStatsTest, Empty) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.StdError(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.Mean(), 5.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 5.0);
  EXPECT_EQ(stats.Max(), 5.0);
}

TEST(StreamingStatsTest, MatchesDirectComputation) {
  const std::vector<double> values{1.5, 2.5, -3.0, 7.0, 0.0, 4.25};
  StreamingStats stats;
  double sum = 0.0;
  for (double v : values) {
    stats.Add(v);
    sum += v;
  }
  const double mean = sum / values.size();
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double variance = ss / (values.size() - 1);
  EXPECT_NEAR(stats.Mean(), mean, 1e-12);
  EXPECT_NEAR(stats.Variance(), variance, 1e-12);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(variance), 1e-12);
  EXPECT_NEAR(stats.Sum(), sum, 1e-12);
}

TEST(StreamingStatsTest, MinMax) {
  StreamingStats stats;
  for (double v : {3.0, -1.0, 10.0, 2.0}) stats.Add(v);
  EXPECT_EQ(stats.Min(), -1.0);
  EXPECT_EQ(stats.Max(), 10.0);
}

TEST(StreamingStatsTest, MergeMatchesCombined) {
  Rng rng(5);
  StreamingStats combined;
  StreamingStats left;
  StreamingStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Normal(3.0, 2.0);
    combined.Add(v);
    (i % 3 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.Mean(), combined.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), combined.Variance(), 1e-9);
  EXPECT_EQ(left.Min(), combined.Min());
  EXPECT_EQ(left.Max(), combined.Max());
}

TEST(StreamingStatsTest, MergeWithEmpty) {
  StreamingStats a;
  StreamingStats b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.Mean(), 2.0);
}

TEST(StreamingStatsTest, StdErrorShrinksWithN) {
  Rng rng(7);
  StreamingStats small;
  StreamingStats large;
  for (int i = 0; i < 100; ++i) small.Add(rng.Normal(0, 1));
  for (int i = 0; i < 10000; ++i) large.Add(rng.Normal(0, 1));
  EXPECT_GT(small.StdError(), large.StdError());
}

TEST(StreamingStatsTest, ConfidenceHalfWidth) {
  StreamingStats stats;
  for (int i = 0; i < 100; ++i) stats.Add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(stats.ConfidenceHalfWidth(1.96), 1.96 * stats.StdError(),
              1e-12);
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-9);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(NormalCdf(5.0), 1.0, 1e-6);
}

}  // namespace
}  // namespace asup
