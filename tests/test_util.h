#ifndef ASUP_TESTS_TEST_UTIL_H_
#define ASUP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/text/synthetic_corpus.h"

namespace asup {
namespace testing_util {

/// A self-owning corpus + index + engine rig for tests.
struct Rig {
  std::unique_ptr<SyntheticCorpusGenerator> generator;
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<Corpus> held_out;
  std::unique_ptr<InvertedIndex> index;
  std::unique_ptr<PlainSearchEngine> engine;

  KeywordQuery Q(const std::string& text) const {
    return KeywordQuery::Parse(corpus->vocabulary(), text);
  }
};

inline Rig MakeRig(size_t corpus_size, size_t k, uint64_t seed = 7,
                   size_t held_out_size = 0) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 2000;
  config.num_topics = 12;
  config.words_per_topic = 150;
  config.seed = seed;
  Rig rig;
  rig.generator = std::make_unique<SyntheticCorpusGenerator>(config);
  rig.corpus = std::make_unique<Corpus>(rig.generator->Generate(corpus_size));
  if (held_out_size > 0) {
    rig.held_out =
        std::make_unique<Corpus>(rig.generator->Generate(held_out_size));
  }
  rig.index = std::make_unique<InvertedIndex>(*rig.corpus);
  rig.engine = std::make_unique<PlainSearchEngine>(*rig.index, k);
  return rig;
}

/// A rig whose seeded topics are rare enough that a topic head word's
/// document frequency is on the order of k — the regime of the paper's
/// correlated-query experiments (Figures 18/19), where virtual query
/// processing triggers reliably.
inline Rig MakeTopicalRig(size_t corpus_size, size_t k, uint64_t seed = 99,
                          size_t held_out_size = 0) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 10000;
  config.num_topics = 96;
  config.words_per_topic = 300;
  config.seed = seed;
  Rig rig;
  rig.generator = std::make_unique<SyntheticCorpusGenerator>(config);
  rig.corpus = std::make_unique<Corpus>(rig.generator->Generate(corpus_size));
  if (held_out_size > 0) {
    rig.held_out =
        std::make_unique<Corpus>(rig.generator->Generate(held_out_size));
  }
  rig.index = std::make_unique<InvertedIndex>(*rig.corpus);
  rig.engine = std::make_unique<PlainSearchEngine>(*rig.index, k);
  return rig;
}

}  // namespace testing_util
}  // namespace asup

#endif  // ASUP_TESTS_TEST_UTIL_H_
