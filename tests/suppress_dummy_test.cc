#include "asup/suppress/dummy_insertion.h"

#include <gtest/gtest.h>

#include "asup/attack/unbiased_est.h"
#include "asup/eval/utility.h"
#include "asup/index/inverted_index.h"
#include "asup/suppress/segment.h"
#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::Rig;

TEST(DummyInsertionTest, PadsToSegmentTop) {
  Rig rig = MakeRig(300, 5);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  // 300 sits in [256, 512): padded size must be 512.
  EXPECT_EQ(padded.corpus.size(), 512u);
  EXPECT_EQ(padded.dummy_ids.size(), 212u);
}

TEST(DummyInsertionTest, OriginalDocumentsSurvive) {
  Rig rig = MakeRig(300, 5);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  for (const Document& doc : rig.corpus->documents()) {
    EXPECT_TRUE(padded.corpus.Contains(doc.id()));
    EXPECT_FALSE(padded.IsDummy(doc.id()));
  }
}

TEST(DummyInsertionTest, DummiesAreFreshIds) {
  Rig rig = MakeRig(300, 5);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  for (DocId dummy : padded.dummy_ids) {
    EXPECT_FALSE(rig.corpus->Contains(dummy));
    EXPECT_TRUE(padded.corpus.Contains(dummy));
  }
}

TEST(DummyInsertionTest, SegmentTopCorpusNeedsNoDummies) {
  Rig rig = MakeRig(511, 5);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  EXPECT_EQ(padded.corpus.size(), 512u);
  EXPECT_EQ(padded.dummy_ids.size(), 1u);
}

TEST(DummyInsertionTest, SuppressesCountEstimate) {
  // The padded corpus's undefended estimate lands near the segment top —
  // the same place AS-SIMPLE pushes the unpadded corpus's estimate.
  Rig rig = MakeRig(300, 50, /*seed=*/5, /*held_out_size=*/400);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  InvertedIndex index(padded.corpus);
  PlainSearchEngine engine(index, 50);
  QueryPool pool(*rig.held_out);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(padded.corpus));
  const double estimate = estimator.Run(engine, 20000, 20000).back().estimate;
  EXPECT_GT(estimate, 360.0);  // well above the true 300
  EXPECT_LT(estimate, 700.0);
}

TEST(DummyInsertionTest, PrecisionCostIsIntrinsic) {
  // Roughly 1 - n/γ^{i+1} of the padded engine's results are fakes; with
  // n = 300 in [256, 512) that is ~41% of every answer, far worse than
  // AS-ARBI's measured precision (paper's reason to reject the approach).
  Rig rig = MakeRig(300, 5);
  const auto padded = PadCorpusWithDummies(*rig.corpus, *rig.generator, 2.0);
  InvertedIndex index(padded.corpus);
  PlainSearchEngine engine(index, 5);

  size_t returned = 0;
  size_t fake = 0;
  for (const char* w : {"sports", "game", "team", "score", "league",
                        "coach", "season", "player", "match", "win"}) {
    const auto q = KeywordQuery::Parse(padded.corpus.vocabulary(), w);
    for (const auto& scored : engine.Search(q).docs) {
      ++returned;
      fake += padded.IsDummy(scored.doc);
    }
  }
  ASSERT_GT(returned, 20u);
  const double fake_fraction =
      static_cast<double>(fake) / static_cast<double>(returned);
  EXPECT_GT(fake_fraction, 0.2);
  EXPECT_LT(fake_fraction, 0.65);
}

}  // namespace
}  // namespace asup
