#include "asup/engine/scoring.h"

#include <memory>

#include <gtest/gtest.h>

namespace asup {
namespace {

// A tiny corpus with controlled term statistics.
class ScoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = std::make_shared<Vocabulary>();
    const TermId rare = vocab_->AddWord("rare");      // df 1
    const TermId common = vocab_->AddWord("common");  // df 4
    const TermId filler = vocab_->AddWord("filler");
    rare_ = rare;
    common_ = common;

    std::vector<Document> docs;
    // Doc 0: short, contains rare + common.
    docs.emplace_back(0, std::vector<TermId>{rare, common, filler});
    // Doc 1: long, one 'common', many fillers.
    std::vector<TermId> long_tokens(50, filler);
    long_tokens.push_back(common);
    docs.emplace_back(1, long_tokens);
    // Doc 2: 'common' thrice.
    docs.emplace_back(2, std::vector<TermId>{common, common, common, filler});
    // Doc 3: 'common' once, short.
    docs.emplace_back(3, std::vector<TermId>{common, filler, filler});
    corpus_ = std::make_unique<Corpus>(vocab_, std::move(docs));
    index_ = std::make_unique<InvertedIndex>(*corpus_);
  }

  MatchedDoc Match(DocId id, std::vector<TermId> terms) {
    MatchedDoc match;
    match.local_doc = index_->LocalOf(id);
    const Document& doc = corpus_->Get(id);
    for (TermId term : terms) match.freqs.push_back(doc.FrequencyOf(term));
    return match;
  }

  std::shared_ptr<Vocabulary> vocab_;
  std::unique_ptr<Corpus> corpus_;
  std::unique_ptr<InvertedIndex> index_;
  TermId rare_;
  TermId common_;
};

TEST_F(ScoringTest, Bm25RareTermOutscoresCommonTerm) {
  Bm25Scorer scorer;
  const std::vector<TermId> rare_q{rare_};
  const std::vector<TermId> common_q{common_};
  const double rare_score = scorer.Score(*index_, rare_q, Match(0, {rare_}));
  const double common_score =
      scorer.Score(*index_, common_q, Match(0, {common_}));
  EXPECT_GT(rare_score, common_score);
}

TEST_F(ScoringTest, Bm25HigherTfScoresHigher) {
  Bm25Scorer scorer;
  const std::vector<TermId> q{common_};
  // Doc 2 has tf 3, doc 3 has tf 1; similar lengths.
  EXPECT_GT(scorer.Score(*index_, q, Match(2, {common_})),
            scorer.Score(*index_, q, Match(3, {common_})));
}

TEST_F(ScoringTest, Bm25LengthNormalizationPenalizesLongDocs) {
  Bm25Scorer scorer;
  const std::vector<TermId> q{common_};
  // Doc 3 (short, tf 1) vs doc 1 (long, tf 1).
  EXPECT_GT(scorer.Score(*index_, q, Match(3, {common_})),
            scorer.Score(*index_, q, Match(1, {common_})));
}

TEST_F(ScoringTest, Bm25TfSaturates) {
  Bm25Scorer scorer;
  const std::vector<TermId> q{common_};
  MatchedDoc tf1 = Match(3, {common_});
  MatchedDoc tf10 = tf1;
  tf10.freqs[0] = 10;
  MatchedDoc tf100 = tf1;
  tf100.freqs[0] = 100;
  const double s1 = scorer.Score(*index_, q, tf1);
  const double s10 = scorer.Score(*index_, q, tf10);
  const double s100 = scorer.Score(*index_, q, tf100);
  EXPECT_GT(s10, s1);
  EXPECT_GT(s100, s10);
  // Diminishing returns: the 10 -> 100 jump adds less than 1 -> 10.
  EXPECT_LT(s100 - s10, s10 - s1);
}

TEST_F(ScoringTest, Bm25MultiTermIsAdditive) {
  Bm25Scorer scorer;
  const std::vector<TermId> both{rare_, common_};
  const std::vector<TermId> just_rare{rare_};
  const std::vector<TermId> just_common{common_};
  const double sum =
      scorer.Score(*index_, just_rare, Match(0, {rare_})) +
      scorer.Score(*index_, just_common, Match(0, {common_}));
  const double joint = scorer.Score(*index_, both, Match(0, {rare_, common_}));
  EXPECT_NEAR(joint, sum, 1e-9);
}

TEST_F(ScoringTest, Bm25ScoresArePositive) {
  Bm25Scorer scorer;
  for (DocId id : {0u, 2u, 3u}) {
    EXPECT_GT(scorer.Score(*index_, std::vector<TermId>{common_},
                           Match(id, {common_})),
              0.0);
  }
}

TEST_F(ScoringTest, TfIdfRareTermOutscoresCommonTerm) {
  TfIdfScorer scorer;
  EXPECT_GT(scorer.Score(*index_, std::vector<TermId>{rare_},
                         Match(0, {rare_})),
            scorer.Score(*index_, std::vector<TermId>{common_},
                         Match(0, {common_})));
}

TEST_F(ScoringTest, Bm25ParametersMatter) {
  // b = 0 disables length normalization: long and short docs with equal tf
  // score equally.
  Bm25Scorer no_length_norm(1.2, 0.0);
  const std::vector<TermId> q{common_};
  EXPECT_NEAR(no_length_norm.Score(*index_, q, Match(3, {common_})),
              no_length_norm.Score(*index_, q, Match(1, {common_})), 1e-9);
}

TEST_F(ScoringTest, DefaultScorerIsBm25) {
  auto scorer = MakeDefaultScorer();
  ASSERT_NE(scorer, nullptr);
  EXPECT_NE(dynamic_cast<Bm25Scorer*>(scorer.get()), nullptr);
}

}  // namespace
}  // namespace asup
