// Incremental-vs-rebuild equivalence at the full-engine level: a defended
// engine whose corpus is maintained through CorpusManager deltas must be
// indistinguishable — answers, suppression decisions, and state_io bytes —
// from the same engine over a freshly built index, and from itself across
// every execution configuration (serial / sharded 1,2,4 / deterministic
// parallel batches).

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asup/engine/parallel_service.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/sharded_service.h"
#include "asup/index/corpus_manager.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/state_io.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/thread_pool.h"

namespace asup {
namespace {

constexpr size_t kK = 5;
constexpr size_t kInitialDocs = 360;

SyntheticCorpusConfig GenConfig() {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 2000;
  config.num_topics = 12;
  config.words_per_topic = 150;
  config.seed = 29;
  return config;
}

const std::vector<std::string>& QueryTexts() {
  static const std::vector<std::string> texts = {
      "sports",      "game",        "sports game", "team",
      "sports team", "score",       "league",      "game team",
      "coach",       "game score",  "season",      "team league",
  };
  return texts;
}

/// The epoch schedule every configuration replays: (add, remove) per delta,
/// with the full query list run before the first delta and after each one.
struct DeltaShape {
  size_t add;
  size_t remove;
};
const std::vector<DeltaShape>& Schedule() {
  static const std::vector<DeltaShape> shapes = {
      {70, 0}, {0, 45}, {60, 30}, {25, 25}};
  return shapes;
}

CorpusDelta MakeDelta(SyntheticCorpusGenerator& generator,
                      const Corpus& current, const DeltaShape& shape) {
  CorpusDelta delta;
  if (shape.add > 0) {
    const Corpus fresh = generator.Generate(shape.add);
    delta.add.assign(fresh.documents().begin(), fresh.documents().end());
  }
  if (shape.remove > 0) {
    const size_t stride = std::max<size_t>(1, current.size() / shape.remove);
    for (size_t pos = 0;
         pos < current.size() && delta.remove.size() < shape.remove;
         pos += stride) {
      delta.remove.push_back(current.documents()[pos].id());
    }
  }
  return delta;
}

enum class Exec {
  kSerialPlain,
  kSharded1,
  kSharded2,
  kSharded4,
  kParallelDeterministic,
};

struct RunOutcome {
  std::vector<SearchResult> answers;
  std::string state_bytes;
  uint64_t docs_hidden = 0;
  uint64_t docs_trimmed = 0;
  uint64_t epoch_migrations = 0;
};

size_t ShardsOf(Exec exec) {
  switch (exec) {
    case Exec::kSharded1: return 1;
    case Exec::kSharded2: return 2;
    case Exec::kSharded4: return 4;
    default: return 0;
  }
}

/// Replays the full schedule under one execution configuration and returns
/// everything the equivalence claims cover.
RunOutcome RunAsSimple(Exec exec) {
  SyntheticCorpusGenerator generator(GenConfig());
  CorpusManager::Options options;
  options.num_shards = ShardsOf(exec);
  CorpusManager manager(generator.Generate(kInitialDocs), options);

  // The sharded service requires a sharded manager; construct only the
  // service this configuration actually uses.
  std::unique_ptr<PlainSearchEngine> plain;
  std::unique_ptr<ShardedSearchService> sharded;
  MatchingEngine* base = nullptr;
  if (options.num_shards >= 1) {
    sharded = std::make_unique<ShardedSearchService>(manager, kK);
    base = sharded.get();
  } else {
    plain = std::make_unique<PlainSearchEngine>(manager, kK);
    base = plain.get();
  }
  AsSimpleEngine defended(*base, AsSimpleConfig{});
  ThreadPool pool(4);
  BatchExecutor executor(pool);

  const Vocabulary& vocabulary = manager.Current()->corpus().vocabulary();
  std::vector<KeywordQuery> queries;
  for (const std::string& text : QueryTexts()) {
    queries.push_back(KeywordQuery::Parse(vocabulary, text));
  }

  RunOutcome outcome;
  const auto run_batch = [&] {
    if (exec == Exec::kParallelDeterministic) {
      auto results = executor.ExecuteDeterministic(defended, queries);
      outcome.answers.insert(outcome.answers.end(), results.begin(),
                             results.end());
    } else {
      for (const KeywordQuery& query : queries) {
        outcome.answers.push_back(defended.Search(query));
      }
    }
  };

  run_batch();
  for (const DeltaShape& shape : Schedule()) {
    manager.Apply(MakeDelta(generator, manager.Current()->corpus(), shape));
    run_batch();
  }

  std::stringstream state;
  EXPECT_TRUE(SaveDefenseState(defended, state));
  outcome.state_bytes = state.str();
  const AsSimpleStats stats = defended.stats();
  outcome.docs_hidden = stats.docs_hidden;
  outcome.docs_trimmed = stats.docs_trimmed;
  outcome.epoch_migrations = stats.epoch_migrations;
  EXPECT_EQ(defended.StateEpoch(), manager.CurrentEpoch());
  return outcome;
}

void ExpectSameAnswers(const std::vector<SearchResult>& a,
                       const std::vector<SearchResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].status, b[i].status) << "query " << i;
    ASSERT_EQ(a[i].docs.size(), b[i].docs.size()) << "query " << i;
    for (size_t d = 0; d < a[i].docs.size(); ++d) {
      ASSERT_EQ(a[i].docs[d].doc, b[i].docs[d].doc) << "query " << i;
      ASSERT_EQ(a[i].docs[d].score, b[i].docs[d].score) << "query " << i;
    }
  }
}

TEST(EpochEquivalenceTest, AsSimpleIdenticalAcrossExecutionConfigs) {
  const RunOutcome reference = RunAsSimple(Exec::kSerialPlain);
  EXPECT_EQ(reference.epoch_migrations, Schedule().size());
  for (Exec exec : {Exec::kSharded1, Exec::kSharded2, Exec::kSharded4,
                    Exec::kParallelDeterministic}) {
    SCOPED_TRACE(static_cast<int>(exec));
    const RunOutcome outcome = RunAsSimple(exec);
    ExpectSameAnswers(reference.answers, outcome.answers);
    EXPECT_EQ(reference.docs_hidden, outcome.docs_hidden);
    EXPECT_EQ(reference.docs_trimmed, outcome.docs_trimmed);
    EXPECT_EQ(reference.epoch_migrations, outcome.epoch_migrations);
    // The strongest form of the claim: the persisted suppression state is
    // bitwise identical, byte for byte.
    EXPECT_EQ(reference.state_bytes, outcome.state_bytes);
  }
}

TEST(EpochEquivalenceTest, MaintainedEngineEqualsFreshEngineOnFinalEpoch) {
  // Apply the whole schedule with no queries, then query: the maintained
  // engine (one lazy migration, merged indexes) must behave bitwise like
  // an engine built fresh over the final corpus — answers and state bytes.
  SyntheticCorpusGenerator managed_gen(GenConfig());
  CorpusManager manager(managed_gen.Generate(kInitialDocs));
  SyntheticCorpusGenerator fresh_gen(GenConfig());
  Corpus reference = fresh_gen.Generate(kInitialDocs);
  for (const DeltaShape& shape : Schedule()) {
    manager.Apply(MakeDelta(managed_gen, manager.Current()->corpus(), shape));
    reference = ApplyDelta(reference, MakeDelta(fresh_gen, reference, shape));
  }

  PlainSearchEngine maintained_base(manager, kK);
  AsSimpleEngine maintained(maintained_base, AsSimpleConfig{});
  const InvertedIndex fresh_index(reference);
  PlainSearchEngine fresh_base(fresh_index, kK);
  AsSimpleEngine fresh(fresh_base, AsSimpleConfig{});

  const Vocabulary& vocabulary = reference.vocabulary();
  for (const std::string& text : QueryTexts()) {
    const KeywordQuery query = KeywordQuery::Parse(vocabulary, text);
    const SearchResult a = maintained.Search(query);
    const SearchResult b = fresh.Search(query);
    ASSERT_EQ(a.status, b.status) << text;
    ASSERT_EQ(a.docs.size(), b.docs.size()) << text;
    for (size_t d = 0; d < a.docs.size(); ++d) {
      ASSERT_EQ(a.docs[d].doc, b.docs[d].doc) << text;
      ASSERT_EQ(a.docs[d].score, b.docs[d].score) << text;
    }
  }
  EXPECT_EQ(maintained.NumActivatedDocs(), fresh.NumActivatedDocs());

  std::stringstream maintained_state;
  std::stringstream fresh_state;
  ASSERT_TRUE(SaveDefenseState(maintained, maintained_state));
  ASSERT_TRUE(SaveDefenseState(fresh, fresh_state));
  EXPECT_EQ(maintained_state.str(), fresh_state.str());

  // And the bytes interoperate: the maintained engine's state restores
  // into the fresh engine (content fingerprints agree by construction).
  std::stringstream replay(maintained_state.str());
  AsSimpleEngine restored(fresh_base, AsSimpleConfig{});
  EXPECT_TRUE(LoadDefenseState(restored, replay));
  EXPECT_EQ(restored.NumActivatedDocs(), maintained.NumActivatedDocs());
}

TEST(EpochEquivalenceTest, AsArbiIdenticalAcrossConfigsAndVsFresh) {
  // The AS-ARBI pipeline (history recording, cover evaluation, virtual
  // answers) layered over epoch maintenance: serial-plain vs sharded(2) vs
  // deterministic-parallel, plus the maintained-vs-fresh comparison on the
  // final epoch.
  const auto run = [](size_t shards, bool deterministic) {
    SyntheticCorpusGenerator generator(GenConfig());
    CorpusManager::Options options;
    options.num_shards = shards;
    CorpusManager manager(generator.Generate(kInitialDocs), options);
    std::unique_ptr<PlainSearchEngine> plain;
    std::unique_ptr<ShardedSearchService> sharded;
    MatchingEngine* base = nullptr;
    if (shards >= 1) {
      sharded = std::make_unique<ShardedSearchService>(manager, kK);
      base = sharded.get();
    } else {
      plain = std::make_unique<PlainSearchEngine>(manager, kK);
      base = plain.get();
    }
    AsArbiEngine defended(*base, AsArbiConfig{});
    ThreadPool pool(4);
    BatchExecutor executor(pool);

    const Vocabulary& vocabulary = manager.Current()->corpus().vocabulary();
    std::vector<KeywordQuery> queries;
    for (const std::string& text : QueryTexts()) {
      queries.push_back(KeywordQuery::Parse(vocabulary, text));
    }
    std::vector<SearchResult> answers;
    const auto run_batch = [&] {
      if (deterministic) {
        auto results = executor.ExecuteDeterministic(defended, queries);
        answers.insert(answers.end(), results.begin(), results.end());
      } else {
        for (const KeywordQuery& query : queries) {
          answers.push_back(defended.Search(query));
        }
      }
    };
    run_batch();
    for (const DeltaShape& shape : Schedule()) {
      manager.Apply(
          MakeDelta(generator, manager.Current()->corpus(), shape));
      run_batch();
    }
    std::stringstream state;
    EXPECT_TRUE(SaveDefenseState(defended, state));
    EXPECT_EQ(defended.StateEpoch(), manager.CurrentEpoch());
    EXPECT_EQ(defended.stats().epoch_migrations, Schedule().size());
    return std::make_pair(std::move(answers), state.str());
  };

  const auto reference = run(0, false);
  for (const auto& [shards, deterministic] :
       {std::pair<size_t, bool>{2, false}, {0, true}}) {
    SCOPED_TRACE(shards);
    const auto outcome = run(shards, deterministic);
    ExpectSameAnswers(reference.first, outcome.first);
    EXPECT_EQ(reference.second, outcome.second);
  }
}

}  // namespace
}  // namespace asup
