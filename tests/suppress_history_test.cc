#include "asup/suppress/history_store.h"

#include <gtest/gtest.h>

namespace asup {
namespace {

Vocabulary MakeVocab() {
  Vocabulary vocab;
  for (const char* w : {"a", "b", "c", "d"}) vocab.AddWord(w);
  return vocab;
}

TEST(HistoryStoreTest, EmptyStore) {
  HistoryStore store;
  EXPECT_EQ(store.NumQueries(), 0u);
  EXPECT_EQ(store.NumDocumentsSeen(), 0u);
  EXPECT_EQ(store.QueriesReturning(5), nullptr);
  EXPECT_EQ(store.SignatureOf(5), nullptr);
}

TEST(HistoryStoreTest, RecordIndexesDocuments) {
  Vocabulary vocab = MakeVocab();
  HistoryStore store;
  const auto q1 = KeywordQuery::FromWords(vocab, {"a"});
  const auto q2 = KeywordQuery::FromWords(vocab, {"b"});
  const uint32_t i1 = store.Record(q1, {10, 20, 30});
  const uint32_t i2 = store.Record(q2, {20, 40});
  EXPECT_EQ(i1, 0u);
  EXPECT_EQ(i2, 1u);
  EXPECT_EQ(store.NumQueries(), 2u);
  EXPECT_EQ(store.NumDocumentsSeen(), 4u);

  const auto* doc20 = store.QueriesReturning(20);
  ASSERT_NE(doc20, nullptr);
  EXPECT_EQ(*doc20, (std::vector<uint32_t>{0, 1}));
  const auto* doc40 = store.QueriesReturning(40);
  ASSERT_NE(doc40, nullptr);
  EXPECT_EQ(*doc40, (std::vector<uint32_t>{1}));
}

TEST(HistoryStoreTest, AnswersStoredSorted) {
  Vocabulary vocab = MakeVocab();
  HistoryStore store;
  store.Record(KeywordQuery::FromWords(vocab, {"a"}), {30, 10, 20});
  EXPECT_EQ(store.QueryAt(0).answer, (std::vector<DocId>{10, 20, 30}));
}

TEST(HistoryStoreTest, SignatureBitsSet) {
  Vocabulary vocab = MakeVocab();
  HistoryStore store;
  const auto q1 = KeywordQuery::FromWords(vocab, {"a"});
  const auto q2 = KeywordQuery::FromWords(vocab, {"b"});
  store.Record(q1, {10});
  store.Record(q2, {10});
  const BitVector* signature = store.SignatureOf(10);
  ASSERT_NE(signature, nullptr);
  EXPECT_TRUE(signature->Test(QuerySignatureBit(q1)));
  EXPECT_TRUE(signature->Test(QuerySignatureBit(q2)));
  // At most two bits (exactly two unless the hashes collide).
  EXPECT_LE(signature->Count(), 2u);
  EXPECT_GE(signature->Count(), 1u);
}

TEST(HistoryStoreTest, SignatureBitInRange) {
  Vocabulary vocab = MakeVocab();
  for (const char* w : {"a", "b", "c", "d"}) {
    const auto q = KeywordQuery::FromWords(vocab, {w});
    EXPECT_LT(QuerySignatureBit(q), kSignatureBits);
  }
}

TEST(HistoryStoreTest, QueryAtPreservesQuery) {
  Vocabulary vocab = MakeVocab();
  HistoryStore store;
  const auto q = KeywordQuery::FromWords(vocab, {"c", "a"});
  store.Record(q, {1, 2});
  EXPECT_EQ(store.QueryAt(0).query.canonical(), "a c");
}

TEST(HistoryStoreTest, EmptyAnswerRecordsQueryOnly) {
  Vocabulary vocab = MakeVocab();
  HistoryStore store;
  store.Record(KeywordQuery::FromWords(vocab, {"d"}), {});
  EXPECT_EQ(store.NumQueries(), 1u);
  EXPECT_EQ(store.NumDocumentsSeen(), 0u);
}

}  // namespace
}  // namespace asup
