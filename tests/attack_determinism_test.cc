#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "asup/attack/brute_force.h"
#include "asup/attack/dynamic_est.h"
#include "asup/attack/stratified_est.h"
#include "asup/attack/unbiased_est.h"
#include "asup/suppress/as_simple.h"
#include "attack_test_util.h"

namespace asup {
namespace {

using testing_util::EpochRig;
using testing_util::MakeEpochRig;
using testing_util::MakePool;
using testing_util::MakeRig;
using testing_util::Rig;

// Seeded-determinism regression for the attack layer (the determinism-lint
// contract, asserted at runtime): identical seeds must reproduce estimate
// trajectories bit-for-bit — exact double equality, no tolerance.

void ExpectIdenticalTrajectories(const std::vector<EstimationPoint>& a,
                                 const std::vector<EstimationPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].queries_issued, b[i].queries_issued) << "point " << i;
    EXPECT_EQ(a[i].estimate, b[i].estimate) << "point " << i;
  }
}

TEST(AttackDeterminismTest, BruteForceTrajectoryIsSeedDeterministic) {
  const Rig rig = MakeRig(300, 50, /*seed=*/29, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = FetchFrom(*rig.corpus);

  BruteForceCrawler first(pool, aggregate, fetcher);
  BruteForceCrawler second(pool, aggregate, fetcher);
  ExpectIdenticalTrajectories(first.Run(*rig.engine, 2000, 500),
                              second.Run(*rig.engine, 2000, 500));
}

TEST(AttackDeterminismTest, UnbiasedTrajectoryIsSeedDeterministic) {
  const Rig rig = MakeRig(300, 50, /*seed=*/29, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = FetchFrom(*rig.corpus);

  UnbiasedEstimator first(pool, aggregate, fetcher);
  UnbiasedEstimator second(pool, aggregate, fetcher);
  ExpectIdenticalTrajectories(first.Run(*rig.engine, 5000, 1000),
                              second.Run(*rig.engine, 5000, 1000));
}

TEST(AttackDeterminismTest, StratifiedTrajectoryIsSeedDeterministic) {
  const Rig rig = MakeRig(300, 50, /*seed=*/29, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  const AggregateQuery aggregate = AggregateQuery::Count();
  const DocFetcher fetcher = FetchFrom(*rig.corpus);

  StratifiedEstimator first(pool, aggregate, fetcher);
  StratifiedEstimator second(pool, aggregate, fetcher);
  ExpectIdenticalTrajectories(first.Run(*rig.engine, 5000, 1000),
                              second.Run(*rig.engine, 5000, 1000));
}

// The keyed suppression coins make defended replays deterministic too, as
// long as engine state is rebuilt from scratch: two fresh AS-SIMPLE stacks
// over identical corpora answer identically, so seeded estimators produce
// identical trajectories through them.
TEST(AttackDeterminismTest, DefendedTrajectoryIsSeedDeterministic) {
  std::vector<std::vector<EstimationPoint>> trajectories;
  for (int run = 0; run < 2; ++run) {
    const Rig rig = MakeRig(300, 50, /*seed=*/29, /*held_out_size=*/300);
    const QueryPool pool = MakePool(rig);
    AsSimpleEngine defended(*rig.engine, AsSimpleConfig());
    UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(*rig.corpus));
    trajectories.push_back(estimator.Run(defended, 5000, 1000));
  }
  ExpectIdenticalTrajectories(trajectories[0], trajectories[1]);
}

// The dynamic estimator's multi-epoch trajectory: two full replays — fresh
// corpus manager, fresh epoch stream, fresh estimator, same seeds — must
// match point-for-point across every epoch.
TEST(AttackDeterminismTest, DynamicTrajectoryIsSeedDeterministicAcrossEpochs) {
  std::vector<std::vector<DynamicEpochPoint>> trajectories;
  for (int run = 0; run < 2; ++run) {
    EpochRig rig = MakeEpochRig(300, 50, /*seed=*/31, /*held_out_size=*/300);
    const QueryPool pool(*rig.held_out);

    // Every document any epoch can return, including ones added later by
    // the stream (the same universe-store pattern the eval harness uses).
    std::map<DocId, Document> universe;
    for (const Document& doc : rig.corpus().documents()) {
      universe.emplace(doc.id(), doc);
    }
    const DocFetcher fetcher = [&universe](DocId id) -> const Document& {
      return universe.at(id);
    };
    DynamicEstimator estimator(pool, AggregateQuery::Count(), fetcher);

    EpochStreamConfig stream_config;
    stream_config.kind = EpochStreamKind::kChurn;
    stream_config.num_epochs = 3;
    stream_config.docs_per_epoch = 30;
    EpochStream stream = rig.MakeStream(stream_config);

    estimator.ObserveEpoch(*rig.engine, 8000);
    while (!stream.exhausted()) {
      CorpusDelta delta = stream.NextDelta(rig.corpus());
      for (const Document& doc : delta.add) universe.emplace(doc.id(), doc);
      rig.manager->Apply(delta);
      estimator.ObserveEpoch(*rig.engine, 8000);
    }
    trajectories.push_back(estimator.trajectory());
  }
  ASSERT_EQ(trajectories[0].size(), 4u);
  ASSERT_EQ(trajectories[1].size(), 4u);
  for (size_t i = 0; i < trajectories[0].size(); ++i) {
    EXPECT_EQ(trajectories[0][i].estimate, trajectories[1][i].estimate);
    EXPECT_EQ(trajectories[0][i].delta_estimate,
              trajectories[1][i].delta_estimate);
    EXPECT_EQ(trajectories[0][i].queries_spent,
              trajectories[1][i].queries_spent);
    EXPECT_EQ(trajectories[0][i].answers_changed,
              trajectories[1][i].answers_changed);
  }
}

// Reset restores the freshly constructed state: the re-run trajectory is
// bit-identical to the first.
TEST(AttackDeterminismTest, ResetReplaysIdentically) {
  const Rig rig = MakeRig(300, 50, /*seed=*/29, /*held_out_size=*/300);
  const QueryPool pool = MakePool(rig);
  DynamicEstimator estimator(pool, AggregateQuery::Count(),
                             FetchFrom(*rig.corpus));
  const double first = estimator.ObserveEpoch(*rig.engine, 8000).estimate;
  estimator.Reset();
  EXPECT_TRUE(estimator.trajectory().empty());
  const double second = estimator.ObserveEpoch(*rig.engine, 8000).estimate;
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace asup
