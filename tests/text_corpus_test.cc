#include "asup/text/corpus.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

namespace asup {
namespace {

Corpus MakeCorpus(std::shared_ptr<Vocabulary> vocab) {
  std::vector<Document> docs;
  docs.emplace_back(0, std::vector<TermId>{0, 1});
  docs.emplace_back(1, std::vector<TermId>{1, 1, 2});
  docs.emplace_back(2, std::vector<TermId>{2});
  docs.emplace_back(5, std::vector<TermId>{0, 2, 2, 2});
  return Corpus(std::move(vocab), std::move(docs));
}

std::shared_ptr<Vocabulary> MakeVocab() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->AddWord("alpha");
  vocab->AddWord("beta");
  vocab->AddWord("gamma");
  return vocab;
}

TEST(CorpusTest, SizeAndLookup) {
  Corpus corpus = MakeCorpus(MakeVocab());
  EXPECT_EQ(corpus.size(), 4u);
  EXPECT_TRUE(corpus.Contains(5));
  EXPECT_FALSE(corpus.Contains(3));
  EXPECT_EQ(corpus.Get(1).length(), 3u);
}

TEST(CorpusTest, TotalLength) {
  Corpus corpus = MakeCorpus(MakeVocab());
  EXPECT_EQ(corpus.TotalLength(), 2u + 3u + 1u + 4u);
}

TEST(CorpusTest, CountWhere) {
  Corpus corpus = MakeCorpus(MakeVocab());
  EXPECT_EQ(corpus.CountWhere(
                [](const Document& d) { return d.Contains(2); }),
            3u);
  EXPECT_EQ(corpus.CountWhere([](const Document&) { return false; }), 0u);
}

TEST(CorpusTest, SumLengthWhere) {
  Corpus corpus = MakeCorpus(MakeVocab());
  EXPECT_EQ(corpus.SumLengthWhere(
                [](const Document& d) { return d.Contains(0); }),
            2u + 4u);
}

TEST(CorpusTest, SampleSubcorpusPreservesIds) {
  Corpus corpus = MakeCorpus(MakeVocab());
  Rng rng(3);
  Corpus sample = corpus.SampleSubcorpus(2, rng);
  EXPECT_EQ(sample.size(), 2u);
  for (const Document& doc : sample.documents()) {
    EXPECT_TRUE(corpus.Contains(doc.id()));
    EXPECT_EQ(corpus.Get(doc.id()).length(), doc.length());
  }
}

TEST(CorpusTest, SampleSubcorpusFull) {
  Corpus corpus = MakeCorpus(MakeVocab());
  Rng rng(4);
  Corpus sample = corpus.SampleSubcorpus(4, rng);
  std::set<DocId> ids;
  for (const Document& doc : sample.documents()) ids.insert(doc.id());
  EXPECT_EQ(ids, (std::set<DocId>{0, 1, 2, 5}));
}

TEST(CorpusTest, SampleSubcorpusEmpty) {
  Corpus corpus = MakeCorpus(MakeVocab());
  Rng rng(5);
  Corpus sample = corpus.SampleSubcorpus(0, rng);
  EXPECT_TRUE(sample.empty());
}

TEST(CorpusTest, NestedSamplesShareVocabulary) {
  Corpus corpus = MakeCorpus(MakeVocab());
  Rng rng(6);
  Corpus sample = corpus.SampleSubcorpus(2, rng);
  EXPECT_EQ(&corpus.vocabulary(), &sample.vocabulary());
}

TEST(CorpusTest, SampleIsUniform) {
  // Each doc should appear in a half-size sample about half the time.
  Corpus corpus = MakeCorpus(MakeVocab());
  std::map<DocId, int> counts;
  for (uint64_t seed = 0; seed < 2000; ++seed) {
    Rng rng(seed);
    Corpus sample = corpus.SampleSubcorpus(2, rng);
    for (const Document& doc : sample.documents()) counts[doc.id()]++;
  }
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, 1000, 120) << "doc " << id;
  }
}

}  // namespace
}  // namespace asup
