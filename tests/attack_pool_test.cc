#include "asup/attack/query_pool.h"

#include <gtest/gtest.h>

#include "asup/attack/aggregate.h"
#include "asup/attack/unbiased_est.h"

#include "attack_test_util.h"

namespace asup {
namespace {

using testing_util::MakePool;
using testing_util::MakeRig;
using testing_util::Rig;

TEST(QueryPoolTest, PoolContainsDistinctSampleWords) {
  Rig rig = MakeRig(200, 5, /*seed=*/3, /*held_out_size=*/150);
  const QueryPool pool = MakePool(rig);
  EXPECT_GT(pool.size(), 100u);
  // Every pool query is a single known word.
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(pool.QueryAt(i).terms().size(), 1u);
    EXPECT_EQ(pool.QueryAt(i).terms()[0], pool.TermAt(i));
  }
}

TEST(QueryPoolTest, SampleDfMatchesHeldOutCorpus) {
  Rig rig = MakeRig(200, 5, /*seed=*/4, /*held_out_size=*/120);
  const QueryPool pool = MakePool(rig);
  for (size_t i = 0; i < pool.size(); i += 37) {
    const TermId term = pool.TermAt(i);
    const uint64_t df = rig.held_out->CountWhere(
        [term](const Document& d) { return d.Contains(term); });
    EXPECT_EQ(pool.SampleDf(i), df);
  }
}

TEST(QueryPoolTest, MatchingQueriesAreExactlyDocWordsInPool) {
  Rig rig = MakeRig(300, 5, /*seed=*/5, /*held_out_size=*/150);
  const QueryPool pool = MakePool(rig);
  const Document& doc = rig.corpus->documents()[7];
  const auto matching = pool.MatchingQueries(doc);
  // Every matching query's term is in the doc.
  for (uint32_t qi : matching) {
    EXPECT_TRUE(doc.Contains(pool.TermAt(qi)));
  }
  // Every doc word that is in the pool appears.
  size_t expected = 0;
  for (const TermFreq& entry : doc.terms()) {
    if (pool.IndexOfTerm(entry.term) != UINT32_MAX) ++expected;
  }
  EXPECT_EQ(matching.size(), expected);
}

TEST(QueryPoolTest, IndexOfTermRoundTrips) {
  Rig rig = MakeRig(100, 5, /*seed=*/6, /*held_out_size=*/100);
  const QueryPool pool = MakePool(rig);
  for (size_t i = 0; i < pool.size(); i += 11) {
    EXPECT_EQ(pool.IndexOfTerm(pool.TermAt(i)), i);
  }
}

TEST(QueryPoolTest, SampleIndexWithinBounds) {
  Rig rig = MakeRig(100, 5, /*seed=*/8, /*held_out_size=*/80);
  const QueryPool pool = MakePool(rig);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(pool.SampleIndex(rng), pool.size());
  }
}

TEST(QueryPoolTest, PoolRecallsMostOfCorpus) {
  // The held-out sample comes from the same universe, so its word pool
  // should recall nearly every corpus document (the paper's worst-case
  // assumption for the defender).
  Rig rig = MakeRig(400, 5, /*seed=*/9, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig);
  size_t recalled = 0;
  for (const Document& doc : rig.corpus->documents()) {
    if (!pool.MatchingQueries(doc).empty()) ++recalled;
  }
  EXPECT_GT(static_cast<double>(recalled) / rig.corpus->size(), 0.95);
}

TEST(QueryPoolTest, DfFilterDropsCommonWords) {
  Rig rig = MakeRig(200, 5, /*seed=*/14, /*held_out_size=*/200);
  const QueryPool unfiltered = MakePool(rig);
  const QueryPool filtered = MakePool(rig, 0.05);
  EXPECT_LT(filtered.size(), unfiltered.size());
  const double max_df = 0.05 * static_cast<double>(rig.held_out->size());
  for (size_t i = 0; i < filtered.size(); ++i) {
    EXPECT_LE(static_cast<double>(filtered.SampleDf(i)), max_df);
  }
}

TEST(QueryPoolTest, FilteredPoolStillRecallsMostDocs) {
  // Rare words dominate recall: dropping the head of the df distribution
  // barely reduces coverage (why real attack pools can ignore stop words).
  Rig rig = MakeRig(400, 5, /*seed=*/15, /*held_out_size=*/400);
  const QueryPool pool = MakePool(rig, 0.05);
  size_t recalled = 0;
  for (const Document& doc : rig.corpus->documents()) {
    if (!pool.MatchingQueries(doc).empty()) ++recalled;
  }
  EXPECT_GT(static_cast<double>(recalled) / rig.corpus->size(), 0.9);
}

TEST(QueryPoolTest, FilterOfOneKeepsEverything) {
  Rig rig = MakeRig(100, 5, /*seed=*/16, /*held_out_size=*/100);
  const QueryPool unfiltered = MakePool(rig);
  const QueryPool same = MakePool(rig, 1.0);
  EXPECT_EQ(same.size(), unfiltered.size());
}

TEST(WordPairPoolTest, BuildsTwoWordQueries) {
  Rig rig = MakeRig(200, 5, /*seed=*/17, /*held_out_size=*/200);
  const QueryPool pool = QueryPool::WordPairPool(*rig.held_out, 10, 1);
  EXPECT_TRUE(pool.is_pair_pool());
  EXPECT_GT(pool.size(), 100u);
  for (size_t i = 0; i < pool.size(); i += 53) {
    EXPECT_EQ(pool.QueryAt(i).terms().size(), 2u);
  }
}

TEST(WordPairPoolTest, SampleDfIsExact) {
  Rig rig = MakeRig(150, 5, /*seed=*/18, /*held_out_size=*/150);
  const QueryPool pool = QueryPool::WordPairPool(*rig.held_out, 8, 2);
  for (size_t i = 0; i < pool.size(); i += 71) {
    const auto& terms = pool.QueryAt(i).terms();
    ASSERT_EQ(terms.size(), 2u);
    const uint64_t df = rig.held_out->CountWhere([&](const Document& d) {
      return d.Contains(terms[0]) && d.Contains(terms[1]);
    });
    EXPECT_EQ(pool.SampleDf(i), df) << i;
  }
}

TEST(WordPairPoolTest, MatchingQueriesConsistent) {
  Rig rig = MakeRig(200, 5, /*seed=*/19, /*held_out_size=*/200);
  const QueryPool pool = QueryPool::WordPairPool(*rig.held_out, 10, 3);
  const Document& doc = rig.corpus->documents()[3];
  const auto matching = pool.MatchingQueries(doc);
  // Every reported query's both terms are in the doc.
  for (uint32_t qi : matching) {
    for (TermId term : pool.QueryAt(qi).terms()) {
      EXPECT_TRUE(doc.Contains(term));
    }
  }
  // Exhaustive cross-check: every pool query whose terms are both in the
  // doc is reported.
  size_t expected = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    const auto& terms = pool.QueryAt(i).terms();
    if (doc.Contains(terms[0]) && doc.Contains(terms[1])) ++expected;
  }
  EXPECT_EQ(matching.size(), expected);
}

TEST(WordPairPoolTest, PairDmaxBelowSingleWordDmax) {
  // The point of phrase-style pools: documents match far fewer pool
  // queries, keeping d_max small (SIMPLE-ADV's second condition). This
  // requires a realistic (large) vocabulary — with a toy vocabulary every
  // pair is common.
  SyntheticCorpusConfig config;
  config.vocabulary_size = 30000;
  config.seed = 20;
  SyntheticCorpusGenerator generator(config);
  const Corpus corpus = generator.Generate(300);
  const Corpus held_out = generator.Generate(300);
  const QueryPool singles(held_out);
  const QueryPool pairs = QueryPool::WordPairPool(held_out, 10, 4);
  double single_avg = 0.0;
  double pair_avg = 0.0;
  const size_t probe = 50;
  for (size_t i = 0; i < probe; ++i) {
    const Document& doc = corpus.documents()[i];
    single_avg += static_cast<double>(singles.MatchingQueries(doc).size());
    pair_avg += static_cast<double>(pairs.MatchingQueries(doc).size());
  }
  // d_max is an absolute bound on the queries matching one document; the
  // pair pool keeps it far smaller than the single-word pool does.
  EXPECT_LT(pair_avg, 0.5 * single_avg);
}

TEST(WordPairPoolTest, DfFilterApplies) {
  Rig rig = MakeRig(150, 5, /*seed=*/21, /*held_out_size=*/150);
  QueryPool::Options options;
  options.max_df_fraction = 0.02;
  const QueryPool pool =
      QueryPool::WordPairPool(*rig.held_out, 10, 5, options);
  const double max_df = 0.02 * static_cast<double>(rig.held_out->size());
  for (size_t i = 0; i < pool.size(); ++i) {
    EXPECT_LE(static_cast<double>(pool.SampleDf(i)), max_df);
  }
}

TEST(WordPairPoolTest, DeterministicForSeed) {
  Rig rig = MakeRig(150, 5, /*seed=*/22, /*held_out_size=*/150);
  const QueryPool a = QueryPool::WordPairPool(*rig.held_out, 10, 7);
  const QueryPool b = QueryPool::WordPairPool(*rig.held_out, 10, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 37) {
    EXPECT_EQ(a.QueryAt(i).canonical(), b.QueryAt(i).canonical());
  }
}

TEST(WordPairPoolTest, UsableByUnbiasedEstimator) {
  Rig rig = MakeRig(400, 50, /*seed=*/23, /*held_out_size=*/400);
  const QueryPool pool = QueryPool::WordPairPool(*rig.held_out, 25, 8);
  UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                              FetchFrom(*rig.corpus));
  const auto points = estimator.Run(*rig.engine, 20000, 20000);
  // Pair pools recall fewer documents, so expect a sane but possibly lower
  // estimate; it must still be in the right order of magnitude.
  EXPECT_GT(points.back().estimate, 100.0);
  EXPECT_LT(points.back().estimate, 1200.0);
}

TEST(AggregateQueryTest, CountMeasure) {
  Rig rig = MakeRig(50, 5, /*seed=*/10);
  const auto aggregate = AggregateQuery::Count();
  EXPECT_EQ(aggregate.MeasureOf(rig.corpus->documents()[0]), 1.0);
  EXPECT_EQ(aggregate.TrueValue(*rig.corpus), 50.0);
}

TEST(AggregateQueryTest, SumLengthMeasure) {
  Rig rig = MakeRig(50, 5, /*seed=*/11);
  const auto aggregate = AggregateQuery::SumLength();
  EXPECT_EQ(aggregate.TrueValue(*rig.corpus),
            static_cast<double>(rig.corpus->TotalLength()));
}

TEST(AggregateQueryTest, SelectionCondition) {
  Rig rig = MakeRig(200, 5, /*seed=*/12);
  const TermId sports = *rig.corpus->vocabulary().Lookup("sports");
  const auto count = AggregateQuery::CountContaining(sports);
  const auto sum = AggregateQuery::SumLengthContaining(sports);
  double expected_count = 0;
  double expected_sum = 0;
  for (const Document& doc : rig.corpus->documents()) {
    if (doc.Contains(sports)) {
      expected_count += 1;
      expected_sum += doc.length();
    }
  }
  EXPECT_EQ(count.TrueValue(*rig.corpus), expected_count);
  EXPECT_EQ(sum.TrueValue(*rig.corpus), expected_sum);
  EXPECT_GT(expected_count, 0);
}

TEST(AggregateQueryTest, ConjunctiveSelectionCondition) {
  Rig rig = MakeRig(300, 5, /*seed=*/12);
  const auto& vocab = rig.corpus->vocabulary();
  const TermId sports = *vocab.Lookup("sports");
  const TermId game = *vocab.Lookup("game");
  const auto both = AggregateQuery::CountContainingAll({sports, game});
  double expected = 0;
  for (const Document& doc : rig.corpus->documents()) {
    if (doc.Contains(sports) && doc.Contains(game)) expected += 1;
  }
  EXPECT_EQ(both.TrueValue(*rig.corpus), expected);
  // Conjunctive is never larger than either single condition.
  EXPECT_LE(both.TrueValue(*rig.corpus),
            AggregateQuery::CountContaining(sports).TrueValue(*rig.corpus));
  EXPECT_LE(both.TrueValue(*rig.corpus),
            AggregateQuery::CountContaining(game).TrueValue(*rig.corpus));
}

TEST(AggregateQueryTest, ConjunctiveSumCondition) {
  Rig rig = MakeRig(200, 5, /*seed=*/12);
  const auto& vocab = rig.corpus->vocabulary();
  const TermId sports = *vocab.Lookup("sports");
  const TermId team = *vocab.Lookup("team");
  const auto sum = AggregateQuery::SumLengthContainingAll({sports, team});
  double expected = 0;
  for (const Document& doc : rig.corpus->documents()) {
    if (doc.Contains(sports) && doc.Contains(team)) expected += doc.length();
  }
  EXPECT_EQ(sum.TrueValue(*rig.corpus), expected);
}

TEST(AggregateQueryTest, Names) {
  Rig rig = MakeRig(10, 5, /*seed=*/13);
  const auto& vocab = rig.corpus->vocabulary();
  EXPECT_EQ(AggregateQuery::Count().Name(vocab), "COUNT(*)");
  const TermId sports = *vocab.Lookup("sports");
  EXPECT_EQ(AggregateQuery::SumLengthContaining(sports).Name(vocab),
            "SUM(doc_length) WHERE contains 'sports'");
  const TermId game = *vocab.Lookup("game");
  EXPECT_EQ(AggregateQuery::CountContainingAll({sports, game}).Name(vocab),
            "COUNT(*) WHERE contains 'sports' AND 'game'");
}

}  // namespace
}  // namespace asup
