#include "asup/index/postings.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "asup/util/random.h"

namespace asup {
namespace {

TEST(VarByteTest, RoundTripsValues) {
  std::vector<uint8_t> bytes;
  const std::vector<uint32_t> values{0,      1,      127,        128,
                                     16383,  16384,  2097151,    2097152,
                                     268435455, 268435456, UINT32_MAX};
  for (uint32_t v : values) AppendVarByte(v, bytes);
  size_t offset = 0;
  for (uint32_t v : values) {
    EXPECT_EQ(ReadVarByte(bytes, offset), v);
  }
  EXPECT_EQ(offset, bytes.size());
}

TEST(VarByteTest, SmallValuesUseOneByte) {
  std::vector<uint8_t> bytes;
  AppendVarByte(127, bytes);
  EXPECT_EQ(bytes.size(), 1u);
  AppendVarByte(128, bytes);
  EXPECT_EQ(bytes.size(), 3u);
}

TEST(VarByteTest, TryReadRejectsTruncatedInput) {
  // Every proper prefix of an encoded value is truncated: the continuation
  // bit of the last present byte promises more bytes than exist.
  for (uint32_t v : {128u, 16384u, 2097152u, 268435456u, UINT32_MAX}) {
    std::vector<uint8_t> bytes;
    AppendVarByte(v, bytes);
    ASSERT_GE(bytes.size(), 2u);
    for (size_t cut = 1; cut < bytes.size(); ++cut) {
      std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
      size_t offset = 0;
      uint32_t value = 0;
      EXPECT_FALSE(TryReadVarByte(truncated, offset, value))
          << "value " << v << " cut to " << cut << " bytes";
      // The failed read never walked past the end of the buffer.
      EXPECT_LE(offset, truncated.size());
    }
  }
}

TEST(VarByteTest, TryReadRejectsEmptyInput) {
  std::vector<uint8_t> empty;
  size_t offset = 0;
  uint32_t value = 0;
  EXPECT_FALSE(TryReadVarByte(empty, offset, value));
  EXPECT_EQ(offset, 0u);
}

TEST(VarByteTest, TryReadRejectsOverlongEncodings) {
  // Six continuation bytes: the fifth byte must terminate a uint32 varint.
  std::vector<uint8_t> overlong(6, 0x80);
  size_t offset = 0;
  uint32_t value = 0;
  EXPECT_FALSE(TryReadVarByte(overlong, offset, value));

  // Exactly five bytes, but the fifth both continues and would shift data
  // past bit 31 — two independent reasons to reject.
  std::vector<uint8_t> continued{0x80, 0x80, 0x80, 0x80, 0x80, 0x00};
  offset = 0;
  EXPECT_FALSE(TryReadVarByte(continued, offset, value));

  // Five terminated bytes whose top nibble overflows uint32 (would encode
  // 2^35). A naive decoder shifts by 35 — UB — before noticing.
  std::vector<uint8_t> overflow{0x80, 0x80, 0x80, 0x80, 0x10};
  offset = 0;
  EXPECT_FALSE(TryReadVarByte(overflow, offset, value));
}

TEST(VarByteTest, TryReadAcceptsMaxValueAtShiftBoundary) {
  // UINT32_MAX uses all five bytes with the top nibble 0x0f — the largest
  // encoding the shift cap must still admit.
  std::vector<uint8_t> bytes;
  AppendVarByte(UINT32_MAX, bytes);
  ASSERT_EQ(bytes.size(), 5u);
  size_t offset = 0;
  uint32_t value = 0;
  ASSERT_TRUE(TryReadVarByte(bytes, offset, value));
  EXPECT_EQ(value, UINT32_MAX);
  EXPECT_EQ(offset, bytes.size());
}

TEST(VarByteTest, TryReadLeavesOffsetAtOffendingByteOnFailure) {
  std::vector<uint8_t> bytes;
  AppendVarByte(7, bytes);       // one clean value...
  bytes.push_back(0x80);         // ...then a truncated varint
  size_t offset = 0;
  uint32_t value = 0;
  ASSERT_TRUE(TryReadVarByte(bytes, offset, value));
  EXPECT_EQ(value, 7u);
  const size_t before_failure = offset;
  EXPECT_FALSE(TryReadVarByte(bytes, offset, value));
  EXPECT_GE(offset, before_failure);
  EXPECT_LE(offset, bytes.size());
}

TEST(VarByteDeathTest, ReadAbortsOnTruncatedInputInEveryBuildType) {
  // The headline bugfix: ReadVarByte on untrusted bytes must abort — not
  // read out of bounds — even in a plain Release build where assert() and
  // ASUP_CHECK compile out.
  std::vector<uint8_t> truncated{0x80, 0x80};
  size_t offset = 0;
  EXPECT_DEATH(ReadVarByte(truncated, offset), "varbyte");
}

TEST(VarByteDeathTest, ReadAbortsOnOverlongInput) {
  std::vector<uint8_t> overlong{0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  size_t offset = 0;
  EXPECT_DEATH(ReadVarByte(overlong, offset), "varbyte");
}

TEST(PostingListTest, EmptyList) {
  PostingList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_FALSE(list.begin().Valid());
  EXPECT_TRUE(list.Decode().empty());
}

TEST(PostingListTest, BuildAndDecode) {
  PostingList::Builder builder;
  builder.Add(3, 2);
  builder.Add(7, 1);
  builder.Add(1000000, 9);
  PostingList list = std::move(builder).Build();
  EXPECT_EQ(list.size(), 3u);
  const auto postings = list.Decode();
  ASSERT_EQ(postings.size(), 3u);
  EXPECT_EQ(postings[0], (Posting{3, 2}));
  EXPECT_EQ(postings[1], (Posting{7, 1}));
  EXPECT_EQ(postings[2], (Posting{1000000, 9}));
}

TEST(PostingListTest, IteratorWalk) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 50; ++d) builder.Add(d * 3, d + 1);
  PostingList list = std::move(builder).Build();
  uint32_t expected = 0;
  for (auto it = list.begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.Get().local_doc, expected * 3);
    EXPECT_EQ(it.Get().freq, expected + 1);
    ++expected;
  }
  EXPECT_EQ(expected, 50u);
}

TEST(PostingListTest, SkipToLandsOnOrAfterTarget) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 100; d += 10) builder.Add(d, 1);
  PostingList list = std::move(builder).Build();
  auto it = list.begin();
  it.SkipTo(35);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.Get().local_doc, 40u);
  it.SkipTo(40);
  EXPECT_EQ(it.Get().local_doc, 40u);  // SkipTo is a no-op when satisfied
  it.SkipTo(95);
  EXPECT_FALSE(it.Valid());
}

TEST(PostingListTest, FirstDocCanBeZero) {
  PostingList::Builder builder;
  builder.Add(0, 5);
  PostingList list = std::move(builder).Build();
  auto it = list.begin();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.Get().local_doc, 0u);
  EXPECT_EQ(it.Get().freq, 5u);
}

TEST(PostingListTest, CompressionIsCompactForDenseLists) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 10000; ++d) builder.Add(d, 1);
  PostingList list = std::move(builder).Build();
  // Group-varint: 5 bytes per 4 one-byte values (tag + payload) in each of
  // the doc and freq streams, i.e. ~2.5 bytes per posting, plus 12 bytes
  // of skip entry per 128-posting block — the tag-byte density cost the
  // 4-at-a-time decode buys (DESIGN.md §17).
  EXPECT_LE(list.ByteSize(), 27000u);
}

TEST(PostingListTest, SkipEntriesPerBlock) {
  PostingList::Builder builder;
  const uint32_t n = PostingList::kPostingBlock * 3 + 10;
  for (uint32_t d = 0; d < n; ++d) builder.Add(d * 2, 1);
  PostingList list = std::move(builder).Build();
  EXPECT_EQ(list.NumSkipEntries(), 4u);  // one per block, first included
}

TEST(PostingListTest, ByteSizeCountsExactEncodedSkipBytes) {
  // Regression: ByteSize() must charge each skip entry its exact encoded
  // footprint (three 32-bit fields), not sizeof(SkipEntry) — struct
  // padding or layout changes must never leak into the reported format
  // cost (IndexStats::posting_bytes feeds fig15-style tables).
  static_assert(PostingList::kSkipEntryEncodedBytes == 12);
  PostingList::Builder builder;
  const uint32_t n = PostingList::kPostingBlock * 2 + 7;  // 3 blocks
  for (uint32_t d = 0; d < n; ++d) builder.Add(d * 3, 2);
  PostingList list = std::move(builder).Build();
  EXPECT_EQ(list.NumSkipEntries(), 3u);
  EXPECT_EQ(list.ByteSize(),
            list.PayloadBytes() +
                list.NumSkipEntries() * PostingList::kSkipEntryEncodedBytes);
}

TEST(PostingListTest, SkipToJumpsAcrossBlocks) {
  PostingList::Builder builder;
  const uint32_t n = PostingList::kPostingBlock * 8;
  for (uint32_t d = 0; d < n; ++d) builder.Add(d * 5, d % 9 + 1);
  PostingList list = std::move(builder).Build();

  auto it = list.begin();
  it.SkipTo(5 * (PostingList::kPostingBlock * 5 + 17));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.Get().local_doc, 5 * (PostingList::kPostingBlock * 5 + 17));
  EXPECT_EQ(it.Get().freq, (PostingList::kPostingBlock * 5 + 17) % 9 + 1);
  // The jump went via the skip table, not a full scan.
  EXPECT_EQ(it.index(), PostingList::kPostingBlock * 5 + 17);
}

TEST(PostingListTest, SkipToNeverMovesBackward) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 1000; ++d) builder.Add(d * 3, 1);
  PostingList list = std::move(builder).Build();
  auto it = list.begin();
  it.SkipTo(2400);
  const size_t index_after = it.index();
  it.SkipTo(100);  // earlier target: no-op
  EXPECT_EQ(it.index(), index_after);
  EXPECT_EQ(it.Get().local_doc, 2400u);
}

TEST(PostingListTest, SkipToAgainstLinearScanRandomized) {
  Rng rng(321);
  for (int round = 0; round < 10; ++round) {
    PostingList::Builder builder;
    std::vector<Posting> reference;
    uint32_t doc = 0;
    const size_t n = 200 + rng.UniformBelow(800);
    for (size_t i = 0; i < n; ++i) {
      doc += 1 + static_cast<uint32_t>(rng.UniformBelow(20));
      builder.Add(doc, 1 + static_cast<uint32_t>(rng.UniformBelow(5)));
      reference.push_back({doc, 0});
    }
    PostingList list = std::move(builder).Build();
    for (int probe = 0; probe < 50; ++probe) {
      const uint32_t target =
          static_cast<uint32_t>(rng.UniformBelow(doc + 10));
      auto it = list.begin();
      it.SkipTo(target);
      // Reference answer via binary search over the decoded ids.
      auto ref = std::lower_bound(
          reference.begin(), reference.end(), target,
          [](const Posting& p, uint32_t t) { return p.local_doc < t; });
      if (ref == reference.end()) {
        EXPECT_FALSE(it.Valid());
      } else {
        ASSERT_TRUE(it.Valid());
        EXPECT_EQ(it.Get().local_doc, ref->local_doc);
      }
    }
  }
}

TEST(PostingListTest, InterleavedSkipAndNext) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 600; ++d) builder.Add(d * 2, 1);
  PostingList list = std::move(builder).Build();
  auto it = list.begin();
  it.SkipTo(300);  // doc 300 = posting 150 (block 2)
  EXPECT_EQ(it.Get().local_doc, 300u);
  it.Next();
  EXPECT_EQ(it.Get().local_doc, 302u);
  it.SkipTo(1000);
  EXPECT_EQ(it.Get().local_doc, 1000u);
  it.Next();
  EXPECT_EQ(it.Get().local_doc, 1002u);
}

TEST(PostingListTest, RandomRoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<Posting> reference;
    uint32_t doc = 0;
    const size_t n = 1 + rng.UniformBelow(500);
    PostingList::Builder builder;
    for (size_t i = 0; i < n; ++i) {
      doc += 1 + static_cast<uint32_t>(rng.UniformBelow(1000));
      const uint32_t freq = 1 + static_cast<uint32_t>(rng.UniformBelow(30));
      builder.Add(doc, freq);
      reference.push_back({doc, freq});
    }
    PostingList list = std::move(builder).Build();
    EXPECT_EQ(list.Decode(), reference);
  }
}

}  // namespace
}  // namespace asup
