// Tests for the metrics layer (src/asup/obs/metrics.h): counter / gauge /
// histogram semantics, concurrent increments (run under TSan by the CI
// `tsan` job), snapshot formats, and the compile-out contract — in the
// ASUP_METRICS=OFF build the macros must not evaluate their operands.

#include "asup/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace asup {
namespace {

#if ASUP_METRICS_ENABLED

TEST(Counter, AddsAndResets) {
  obs::Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(Gauge, SetAddReset) {
  obs::Gauge gauge;
  gauge.Set(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.5);
  gauge.Add(-0.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);
  gauge.Reset();
  EXPECT_DOUBLE_EQ(gauge.Value(), 0.0);
}

TEST(Counter, ConcurrentIncrementsAreLossless) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  obs::Histogram histogram({10, 100, 1000});
  histogram.Observe(0);     // bucket 0: ≤ 10
  histogram.Observe(10);    // bucket 0 (inclusive upper edge)
  histogram.Observe(11);    // bucket 1: ≤ 100
  histogram.Observe(100);   // bucket 1
  histogram.Observe(1000);  // bucket 2: ≤ 1000
  histogram.Observe(1001);  // overflow bucket
  const obs::Histogram::Snapshot snap = histogram.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total_count, 6u);
  EXPECT_EQ(snap.sum, 0 + 10 + 11 + 100 + 1000 + 1001);
}

TEST(Histogram, QuantileInterpolatesWithinBucket) {
  obs::Histogram histogram({100});
  for (int i = 0; i < 10; ++i) histogram.Observe(50);
  const obs::Histogram::Snapshot snap = histogram.Snap();
  // All mass in [0, 100): the median interpolates to the bucket middle.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(obs::Histogram::Snapshot{}.Quantile(0.5), 0.0);
}

TEST(Histogram, OverflowObservationsReportLargestBound) {
  obs::Histogram histogram({10, 20});
  histogram.Observe(1'000'000);
  EXPECT_DOUBLE_EQ(histogram.Snap().Quantile(0.99), 20.0);
}

TEST(Histogram, ConcurrentObserveSumsAcrossShards) {
  obs::Histogram histogram(obs::LatencyBucketsNanos());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(1000 * (t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::Histogram::Snapshot snap = histogram.Snap();
  EXPECT_EQ(snap.total_count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<int64_t>(kPerThread) * 1000 * (t + 1);
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(MetricsRegistry, ReturnsStableReferencesAndSnapshotsValues) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.CounterOf("asup_test_a_total");
  obs::Counter& again = registry.CounterOf("asup_test_a_total");
  EXPECT_EQ(&a, &again);
  a.Add(3);
  registry.GaugeOf("asup_test_depth").Set(7.0);
  const auto counters = registry.CounterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.at("asup_test_a_total"), 3u);
  EXPECT_DOUBLE_EQ(registry.GaugeValues().at("asup_test_depth"), 7.0);
  registry.Reset();
  EXPECT_EQ(a.Value(), 0u);  // reference survives Reset
}

TEST(MetricsRegistry, PrometheusTextExposesLabelledHistogramSeries) {
  obs::MetricsRegistry registry;
  registry.CounterOf("asup_test_queries_total").Add(2);
  registry.HistogramOf("asup_test_ns{stage=\"hide\"}", {10, 100})
      .Observe(50);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("asup_test_queries_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE asup_test_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("asup_test_ns_bucket{stage=\"hide\",le=\"10\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("asup_test_ns_bucket{stage=\"hide\",le=\"100\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("asup_test_ns_bucket{stage=\"hide\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("asup_test_ns_count{stage=\"hide\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistry, PrometheusTextEmitsHelpWhenRegistered) {
  obs::MetricsRegistry registry;
  registry.CounterOf("asup_test_helped_total", "Things that happened").Add(1);
  registry.GaugeOf("asup_test_depth", "Current queue depth").Set(2.0);
  registry
      .HistogramOf("asup_test_ns{stage=\"hide\"}", {10}, "Stage latencies")
      .Observe(5);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# HELP asup_test_helped_total Things that happened\n"
                      "# TYPE asup_test_helped_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP asup_test_depth Current queue depth\n"),
            std::string::npos);
  // Help attaches to the metric *family* (label-stripped name).
  EXPECT_NE(text.find("# HELP asup_test_ns Stage latencies\n"
                      "# TYPE asup_test_ns histogram\n"),
            std::string::npos);
  EXPECT_EQ(registry.HelpOf("asup_test_ns"), "Stage latencies");
  EXPECT_EQ(registry.HelpOf("asup_test_unknown"), "");
}

TEST(MetricsRegistry, HelpIsFirstWriterWinsAndOptional) {
  obs::MetricsRegistry registry;
  registry.CounterOf("asup_test_total", "first");
  registry.CounterOf("asup_test_total", "second");  // ignored
  EXPECT_EQ(registry.HelpOf("asup_test_total"), "first");

  // Without help the snapshot is byte-identical to the pre-HELP format:
  // no `# HELP` line appears anywhere.
  obs::MetricsRegistry bare;
  bare.CounterOf("asup_test_bare_total").Add(1);
  bare.GaugeOf("asup_test_bare_gauge").Set(1.0);
  bare.HistogramOf("asup_test_bare_ns", {10}).Observe(1);
  EXPECT_EQ(bare.PrometheusText().find("# HELP"), std::string::npos);
}

TEST(MetricsMacros, RegisterHelpViaOptionalArgument) {
  obs::MetricsRegistry::Default().Reset();
  ASUP_METRIC_COUNT("asup_test_help_macro_total", 1, "Macro-registered help");
  EXPECT_EQ(obs::MetricsRegistry::Default().HelpOf(
                "asup_test_help_macro_total"),
            "Macro-registered help");
}

TEST(MetricsRegistry, JsonTextEscapesLabelQuotes) {
  obs::MetricsRegistry registry;
  registry.CounterOf("asup_test_total{kind=\"x\"}").Add(1);
  const std::string json = registry.JsonText();
  EXPECT_NE(json.find("\"asup_test_total{kind=\\\"x\\\"}\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{}"), std::string::npos);
}

TEST(MetricsRegistry, FindHistogramReturnsNullForUnknownName) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.FindHistogram("nope"), nullptr);
  registry.HistogramOf("asup_test_ns", {1});
  EXPECT_NE(registry.FindHistogram("asup_test_ns"), nullptr);
}

TEST(MetricsMacros, WriteToDefaultRegistry) {
  obs::MetricsRegistry::Default().Reset();
  ASUP_METRIC_COUNT("asup_test_macro_total", 2);
  ASUP_METRIC_COUNT("asup_test_macro_total", 3);
  ASUP_METRIC_GAUGE_SET("asup_test_macro_gauge", 1.5);
  ASUP_METRIC_OBSERVE_NANOS("asup_test_macro_ns", 1234);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  EXPECT_EQ(registry.CounterValues().at("asup_test_macro_total"), 5u);
  EXPECT_DOUBLE_EQ(registry.GaugeValues().at("asup_test_macro_gauge"), 1.5);
  ASSERT_NE(registry.FindHistogram("asup_test_macro_ns"), nullptr);
  EXPECT_EQ(registry.FindHistogram("asup_test_macro_ns")->Snap().total_count,
            1u);
}

#else  // !ASUP_METRICS_ENABLED

// The compiled-out macros must not evaluate their operands (mirrors the
// disabled-ASUP_CHECK contract in contracts_test.cc).
TEST(MetricsCompiledOut, MacrosDoNotEvaluateOperands) {
  int evaluations = 0;
  auto bump = [&evaluations] { return ++evaluations; };
  ASUP_METRIC_COUNT("asup_test_total", bump());
  ASUP_METRIC_GAUGE_SET("asup_test_gauge", bump());
  ASUP_METRIC_GAUGE_ADD("asup_test_gauge", bump());
  ASUP_METRIC_OBSERVE_NANOS("asup_test_ns", bump());
  ASUP_METRIC_OBSERVE_SIZE("asup_test_size", bump());
  EXPECT_EQ(evaluations, 0);
}

TEST(MetricsCompiledOut, MetricsOnlyDropsItsBody) {
  int evaluations = 0;
  ASUP_METRICS_ONLY(++evaluations;)
  EXPECT_EQ(evaluations, 0);
}

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup
