#include "asup/text/document.h"

#include <gtest/gtest.h>

#include "asup/text/tokenizer.h"

namespace asup {
namespace {

TEST(DocumentTest, FromTokensComputesFrequencies) {
  Document doc(7, std::vector<TermId>{3, 1, 3, 2, 3, 1});
  EXPECT_EQ(doc.id(), 7u);
  EXPECT_EQ(doc.length(), 6u);
  EXPECT_EQ(doc.NumDistinctTerms(), 3u);
  EXPECT_EQ(doc.FrequencyOf(1), 2u);
  EXPECT_EQ(doc.FrequencyOf(2), 1u);
  EXPECT_EQ(doc.FrequencyOf(3), 3u);
  EXPECT_EQ(doc.FrequencyOf(4), 0u);
}

TEST(DocumentTest, TermsAreSorted) {
  Document doc(1, std::vector<TermId>{9, 5, 7, 5, 9, 1});
  const auto& terms = doc.terms();
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LT(terms[i - 1].term, terms[i].term);
  }
}

TEST(DocumentTest, Contains) {
  Document doc(2, std::vector<TermId>{10, 20});
  EXPECT_TRUE(doc.Contains(10));
  EXPECT_TRUE(doc.Contains(20));
  EXPECT_FALSE(doc.Contains(15));
  EXPECT_FALSE(doc.Contains(0));
  EXPECT_FALSE(doc.Contains(999));
}

TEST(DocumentTest, EmptyDocument) {
  Document doc(3, std::vector<TermId>{});
  EXPECT_EQ(doc.length(), 0u);
  EXPECT_EQ(doc.NumDistinctTerms(), 0u);
  EXPECT_FALSE(doc.Contains(0));
}

TEST(DocumentTest, FromSortedTermFreqs) {
  std::vector<TermFreq> terms{{1, 2}, {5, 1}};
  Document doc(4, terms, 3);
  EXPECT_EQ(doc.length(), 3u);
  EXPECT_EQ(doc.FrequencyOf(1), 2u);
  EXPECT_EQ(doc.FrequencyOf(5), 1u);
}

TEST(TokenizerTest, SplitsAndLowercases) {
  const auto tokens = Tokenize("Linux OS Kernel, version 6.1!");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "linux");
  EXPECT_EQ(tokens[1], "os");
  EXPECT_EQ(tokens[2], "kernel");
  EXPECT_EQ(tokens[3], "version");
  EXPECT_EQ(tokens[4], "6");
  EXPECT_EQ(tokens[5], "1");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,.!? ").empty());
}

TEST(TokenizerTest, TokenizeToTermsAddsWords) {
  Vocabulary vocab;
  const auto terms = TokenizeToTerms("windows xp os handbook", vocab);
  EXPECT_EQ(terms.size(), 4u);
  EXPECT_EQ(vocab.size(), 4u);
  EXPECT_TRUE(vocab.Lookup("xp").has_value());
}

TEST(TokenizerTest, MakeDocumentFromText) {
  Vocabulary vocab;
  const Document doc = MakeDocumentFromText(11, "os os kernel", vocab);
  EXPECT_EQ(doc.id(), 11u);
  EXPECT_EQ(doc.length(), 3u);
  EXPECT_EQ(doc.FrequencyOf(*vocab.Lookup("os")), 2u);
  EXPECT_EQ(doc.FrequencyOf(*vocab.Lookup("kernel")), 1u);
}

}  // namespace
}  // namespace asup
