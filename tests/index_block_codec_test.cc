#include "asup/index/block_codec.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "asup/index/postings.h"
#include "asup/util/random.h"

namespace asup {
namespace blockcodec {
namespace {

constexpr size_t kB = kMaxBlockPostings;

// Postings with mixed delta and frequency widths: small steps, 2-4 byte
// jumps, freqs from 1 up through multi-byte values.
std::vector<Posting> MakePostings(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Posting> postings;
  uint32_t doc = static_cast<uint32_t>(rng.UniformBelow(1000));
  for (size_t i = 0; i < count; ++i) {
    postings.push_back(
        {doc, 1 + static_cast<uint32_t>(rng.UniformBelow(70000))});
    const size_t width = rng.UniformBelow(4);
    doc += 1 +
           static_cast<uint32_t>(rng.UniformBelow(1u << (2 + 7 * width)));
  }
  return postings;
}

void ExpectRoundTrip(const std::vector<Posting>& postings) {
  std::vector<uint8_t> bytes;
  EncodeBlock(postings, bytes);
  size_t offset = 0;
  DecodedBlock block;
  ASSERT_TRUE(TryDecodeBlock(bytes, offset, postings.size(), block));
  EXPECT_EQ(offset, bytes.size());
  ASSERT_EQ(block.count, postings.size());
  for (size_t i = 0; i < postings.size(); ++i) {
    EXPECT_EQ(block.docs[i], postings[i].local_doc) << i;
    EXPECT_EQ(block.freqs[i], postings[i].freq) << i;
  }
}

TEST(BlockCodecTest, RoundTripsAtEveryBoundarySize) {
  for (const size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                             size_t{5}, kB - 1, kB}) {
    for (uint64_t seed = 0; seed < 8; ++seed) {
      SCOPED_TRACE(count);
      ExpectRoundTrip(MakePostings(count, 31 * count + seed));
    }
  }
}

TEST(BlockCodecTest, DecodeStartsAtArbitraryOffset) {
  const std::vector<Posting> postings = MakePostings(10, 99);
  std::vector<uint8_t> bytes{0xde, 0xad, 0xbe};  // unrelated prefix
  EncodeBlock(postings, bytes);
  size_t offset = 3;
  DecodedBlock block;
  ASSERT_TRUE(TryDecodeBlock(bytes, offset, postings.size(), block));
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(block.docs[9], postings[9].local_doc);
}

// Decode-then-re-encode is byte-identical: the format admits exactly one
// encoding per posting sequence (minimal group lengths, minimal tail
// varbytes), which is what lets the fuzz harness use re-encoding as its
// oracle.
TEST(BlockCodecTest, DecodeReencodeIsAFixedPoint) {
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const size_t count = 1 + seed % kB;
    const std::vector<Posting> postings = MakePostings(count, 7000 + seed);
    std::vector<uint8_t> bytes;
    EncodeBlock(postings, bytes);
    size_t offset = 0;
    DecodedBlock block;
    ASSERT_TRUE(TryDecodeBlock(bytes, offset, count, block));
    std::vector<Posting> decoded;
    for (size_t i = 0; i < block.count; ++i) {
      decoded.push_back({block.docs[i], block.freqs[i]});
    }
    std::vector<uint8_t> again;
    EncodeBlock(decoded, again);
    EXPECT_EQ(again, bytes) << "seed " << seed;
  }
}

TEST(BlockCodecTest, EveryTruncationIsRejected) {
  // Counts on both sides of the group/tail boundary: 8 decodes purely via
  // groups, 7 and 3 exercise the scalar tail, 1 is tail-only.
  for (const size_t count : {size_t{1}, size_t{3}, size_t{7}, size_t{8}}) {
    const std::vector<Posting> postings = MakePostings(count, 500 + count);
    std::vector<uint8_t> bytes;
    EncodeBlock(postings, bytes);
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      const std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
      size_t offset = 0;
      DecodedBlock block;
      EXPECT_FALSE(TryDecodeBlock(prefix, offset, count, block))
          << "count " << count << " cut " << cut;
    }
  }
}

TEST(BlockCodecTest, CountOutOfRangeIsRejected) {
  const std::vector<Posting> postings = MakePostings(4, 1);
  std::vector<uint8_t> bytes;
  EncodeBlock(postings, bytes);
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(bytes, offset, 0, block));
  EXPECT_FALSE(TryDecodeBlock(bytes, offset, kB + 1, block));
}

TEST(BlockCodecTest, NonMinimalGroupLengthIsRejected) {
  // Doc stream as one group: tag declares 2 bytes for the first value but
  // encodes 5 — decodable, not canonical.
  const std::vector<uint8_t> padded{0x01, 0x05, 0x00, 0x01, 0x01, 0x01,
                                    // freq stream: group of four 1s
                                    0x00, 0x01, 0x01, 0x01, 0x01};
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(padded, offset, 4, block));

  // The same content minimally encoded decodes fine.
  const std::vector<uint8_t> minimal{0x00, 0x05, 0x01, 0x01, 0x01,
                                     0x00, 0x01, 0x01, 0x01, 0x01};
  offset = 0;
  ASSERT_TRUE(TryDecodeBlock(minimal, offset, 4, block));
  EXPECT_EQ(block.docs[0], 5u);
  EXPECT_EQ(block.docs[3], 8u);
}

TEST(BlockCodecTest, NonMinimalTailVarByteIsRejected) {
  // count 1 takes the scalar-tail path; 0x85 0x00 is value 5 in two bytes.
  const std::vector<uint8_t> padded{0x85, 0x00, 0x01};
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(padded, offset, 1, block));

  const std::vector<uint8_t> minimal{0x05, 0x01};
  offset = 0;
  ASSERT_TRUE(TryDecodeBlock(minimal, offset, 1, block));
  EXPECT_EQ(block.docs[0], 5u);
  EXPECT_EQ(block.freqs[0], 1u);
}

TEST(BlockCodecTest, ZeroDeltaIsRejected) {
  // Two postings, tail path: abs doc 5 then delta 0 — ids must strictly
  // ascend.
  const std::vector<uint8_t> bytes{0x05, 0x00, 0x01, 0x01};
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(bytes, offset, 2, block));
}

TEST(BlockCodecTest, ZeroFrequencyIsRejected) {
  const std::vector<uint8_t> bytes{0x05, 0x01, 0x01, 0x00};
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(bytes, offset, 2, block));
}

TEST(BlockCodecTest, DocIdOverflowIsRejected) {
  // abs UINT32_MAX then delta 1 overflows the 32-bit id space.
  std::vector<uint8_t> bytes;
  AppendVarByte(UINT32_MAX, bytes);
  AppendVarByte(1, bytes);
  AppendVarByte(1, bytes);
  AppendVarByte(1, bytes);
  size_t offset = 0;
  DecodedBlock block;
  EXPECT_FALSE(TryDecodeBlock(bytes, offset, 2, block));
}

TEST(BlockCodecTest, GarbageBytesNeverDecode) {
  Rng rng(4242);
  size_t accepted = 0;
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> bytes(rng.UniformBelow(64));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformBelow(256));
    const size_t count = 1 + rng.UniformBelow(kB);
    size_t offset = 0;
    DecodedBlock block;
    if (!TryDecodeBlock(bytes, offset, count, block)) continue;
    // Random bytes occasionally form a valid block; when they do, the
    // decode must uphold every invariant.
    ++accepted;
    ASSERT_LE(offset, bytes.size());
    for (size_t i = 1; i < block.count; ++i) {
      ASSERT_LT(block.docs[i - 1], block.docs[i]);
    }
    for (size_t i = 0; i < block.count; ++i) ASSERT_GE(block.freqs[i], 1u);
  }
  // The format is dense enough that some short random inputs parse; this
  // is informational, not load-bearing.
  SUCCEED() << accepted << " random inputs parsed";
}

// PostingList drives the codec across block boundaries; exercise the exact
// sizes where the builder's flush logic changes shape.
TEST(BlockCodecTest, PostingListRoundTripsAcrossBlockBoundaries) {
  for (const size_t count :
       {size_t{0}, size_t{1}, kB - 1, kB, kB + 1, 4 * kB}) {
    const std::vector<Posting> postings = MakePostings(count, 88 + count);
    PostingList::Builder builder;
    for (const Posting& p : postings) builder.Add(p.local_doc, p.freq);
    const PostingList list = std::move(builder).Build();
    EXPECT_EQ(list.size(), count);
    const std::vector<Posting> decoded = list.Decode();
    ASSERT_EQ(decoded.size(), count);
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(decoded[i].local_doc, postings[i].local_doc);
      EXPECT_EQ(decoded[i].freq, postings[i].freq);
    }
  }
}

}  // namespace
}  // namespace blockcodec
}  // namespace asup
