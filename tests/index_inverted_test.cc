#include "asup/index/inverted_index.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "asup/engine/doc_iterator.h"
#include "asup/engine/query_node.h"
#include "asup/text/synthetic_corpus.h"

namespace asup {
namespace {

// Matching moved out of the index into the engine's iterator algebra; these
// helpers keep the historical conjunctive-semantics tests (which exercise
// the *index* as seen through an And-of-terms tree) in their original shape.
QueryNode AndOf(const std::vector<TermId>& terms) {
  if (terms.empty()) return QueryNode::MakeEmpty();
  std::vector<QueryNode> children;
  children.reserve(terms.size());
  for (TermId term : terms) children.push_back(QueryNode::Term(term));
  return QueryNode::And(std::move(children));
}

std::vector<MatchedDoc> Match(const InvertedIndex& index,
                              const std::vector<TermId>& terms) {
  return ExecuteMatch(index, AndOf(terms), terms);
}

size_t Count(const InvertedIndex& index, const std::vector<TermId>& terms) {
  return ExecuteCount(index, AndOf(terms));
}

// Small hand-built corpus mirroring Figure 1 of the paper.
Corpus FigureOneCorpus() {
  auto vocab = std::make_shared<Vocabulary>();
  const TermId linux = vocab->AddWord("linux");      // 0
  const TermId os = vocab->AddWord("os");            // 1
  const TermId kernel = vocab->AddWord("kernel");    // 2
  const TermId windows = vocab->AddWord("windows");  // 3
  const TermId handbook = vocab->AddWord("handbook");  // 4
  std::vector<Document> docs;
  // X1: Linux OS Kernel
  docs.emplace_back(1, std::vector<TermId>{linux, os, kernel});
  // X2: Windows XP OS Handbook (xp omitted for brevity)
  docs.emplace_back(2, std::vector<TermId>{windows, os, handbook});
  // X3: Linux OS Handbook Volume 1
  docs.emplace_back(3, std::vector<TermId>{linux, os, handbook});
  // X4: Comparison between Windows and Linux OS
  docs.emplace_back(4, std::vector<TermId>{windows, linux, os});
  return Corpus(vocab, std::move(docs));
}

TEST(InvertedIndexTest, DocumentFrequencies) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const auto& vocab = corpus.vocabulary();
  EXPECT_EQ(index.DocumentFrequency(*vocab.Lookup("os")), 4u);
  EXPECT_EQ(index.DocumentFrequency(*vocab.Lookup("linux")), 3u);
  EXPECT_EQ(index.DocumentFrequency(*vocab.Lookup("windows")), 2u);
  EXPECT_EQ(index.DocumentFrequency(*vocab.Lookup("kernel")), 1u);
  EXPECT_EQ(index.DocumentFrequency(TermId{999}), 0u);
}

TEST(InvertedIndexTest, SingleTermMatch) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const TermId linux = *corpus.vocabulary().Lookup("linux");
  const auto matches = Match(index, std::vector<TermId>{linux});
  ASSERT_EQ(matches.size(), 3u);
  // Ascending by id.
  EXPECT_EQ(index.LocalToId(matches[0].local_doc), 1u);
  EXPECT_EQ(index.LocalToId(matches[1].local_doc), 3u);
  EXPECT_EQ(index.LocalToId(matches[2].local_doc), 4u);
}

TEST(InvertedIndexTest, ConjunctiveMatchIntersects) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const auto& vocab = corpus.vocabulary();
  const std::vector<TermId> terms{*vocab.Lookup("linux"),
                                  *vocab.Lookup("handbook")};
  const auto matches = Match(index, terms);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(index.LocalToId(matches[0].local_doc), 3u);
  EXPECT_EQ(matches[0].freqs.size(), 2u);
  EXPECT_EQ(matches[0].freqs[0], 1u);  // linux tf in X3
  EXPECT_EQ(matches[0].freqs[1], 1u);  // handbook tf in X3
}

TEST(InvertedIndexTest, EmptyQueryMatchesNothing) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  EXPECT_TRUE(Match(index, {}).empty());
  EXPECT_EQ(Count(index, {}), 0u);
}

TEST(InvertedIndexTest, UnknownTermMatchesNothing) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const TermId kernel = *corpus.vocabulary().Lookup("kernel");
  EXPECT_TRUE(
      Match(index, std::vector<TermId>{kernel, TermId{99}}).empty());
}

TEST(InvertedIndexTest, DuplicateQueryTerms) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const TermId linux = *corpus.vocabulary().Lookup("linux");
  const auto matches =
      Match(index, std::vector<TermId>{linux, linux});
  EXPECT_EQ(matches.size(), 3u);
  for (const auto& m : matches) {
    ASSERT_EQ(m.freqs.size(), 2u);
    EXPECT_EQ(m.freqs[0], m.freqs[1]);
  }
}

TEST(InvertedIndexTest, MatchCountAgreesWithMatch) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const auto& vocab = corpus.vocabulary();
  for (const char* w1 : {"linux", "os", "windows", "kernel", "handbook"}) {
    for (const char* w2 : {"linux", "os", "windows", "kernel", "handbook"}) {
      const std::vector<TermId> terms{*vocab.Lookup(w1), *vocab.Lookup(w2)};
      EXPECT_EQ(Count(index, terms),
                Match(index, terms).size())
          << w1 << " " << w2;
    }
  }
}

TEST(InvertedIndexTest, LocalIdsAscendWithDocIds) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  for (uint32_t local = 1; local < index.NumDocuments(); ++local) {
    EXPECT_LT(index.LocalToId(local - 1), index.LocalToId(local));
  }
}

TEST(InvertedIndexTest, LocalOfInvertsLocalToId) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  for (uint32_t local = 0; local < index.NumDocuments(); ++local) {
    EXPECT_EQ(index.LocalOf(index.LocalToId(local)), local);
  }
}

TEST(InvertedIndexTest, StatsAreConsistent) {
  Corpus corpus = FigureOneCorpus();
  InvertedIndex index(corpus);
  const IndexStats& stats = index.stats();
  EXPECT_EQ(stats.num_documents, 4u);
  EXPECT_EQ(stats.num_terms, 5u);
  EXPECT_EQ(stats.num_postings, 4u + 3u + 2u + 1u + 2u);
  EXPECT_GT(stats.posting_bytes, 0u);
  EXPECT_NEAR(stats.average_doc_length, 3.0, 1e-9);
}

// Cross-check conjunctive matching against a brute-force scan on a larger
// synthetic corpus.
class IndexAgreementTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IndexAgreementTest, MatchesBruteForceScan) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 800;
  config.num_topics = 8;
  config.words_per_topic = 80;
  config.seed = 123 + GetParam();
  SyntheticCorpusGenerator generator(config);
  Corpus corpus = generator.Generate(400);
  InvertedIndex index(corpus);

  Rng rng(55 + GetParam());
  for (int round = 0; round < 50; ++round) {
    const size_t num_terms = 1 + rng.UniformBelow(3);
    std::vector<TermId> terms;
    for (size_t t = 0; t < num_terms; ++t) {
      terms.push_back(static_cast<TermId>(
          rng.UniformBelow(config.vocabulary_size)));
    }
    std::vector<DocId> expected;
    for (const Document& doc : corpus.documents()) {
      bool all = true;
      for (TermId term : terms) all = all && doc.Contains(term);
      if (all) expected.push_back(doc.id());
    }
    std::sort(expected.begin(), expected.end());

    std::vector<DocId> actual;
    for (const auto& match : Match(index, terms)) {
      actual.push_back(index.LocalToId(match.local_doc));
    }
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(Count(index, terms), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexAgreementTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace asup
