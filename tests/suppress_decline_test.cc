#include "asup/suppress/as_decline.h"

#include "asup/suppress/as_arbi.h"

#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace asup {
namespace {

using testing_util::MakeRig;
using testing_util::MakeTopicalRig;
using testing_util::Rig;

std::vector<KeywordQuery> CorrelatedFamily(const Rig& rig, size_t count) {
  std::vector<KeywordQuery> queries;
  const char* words[] = {"game",   "team",   "score", "league", "coach",
                         "season", "player", "match", "win"};
  for (const char* w : words) {
    if (queries.size() >= count) break;
    queries.push_back(rig.Q(std::string("sports ") + w));
  }
  return queries;
}

TEST(AsDeclineTest, UnderflowPassesThrough) {
  Rig rig = MakeRig(400, 5);
  AsDeclineEngine defended(*rig.engine, AsDeclineConfig{});
  const auto result = defended.Search(rig.Q("notaword"));
  EXPECT_EQ(result.status, QueryStatus::kUnderflow);
}

TEST(AsDeclineTest, FirstQueryIsAnswered) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsDeclineEngine defended(*rig.engine, AsDeclineConfig{});
  const auto result = defended.Search(rig.Q("sports game"));
  EXPECT_NE(result.status, QueryStatus::kDeclined);
  EXPECT_FALSE(result.docs.empty());
  EXPECT_EQ(defended.stats().simple_answers, 1u);
}

TEST(AsDeclineTest, CoveredQueriesAreDeclined) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsDeclineEngine defended(*rig.engine, AsDeclineConfig{});
  size_t declined = 0;
  for (const auto& q : CorrelatedFamily(rig, 9)) {
    const auto result = defended.Search(q);
    if (result.status == QueryStatus::kDeclined) {
      EXPECT_TRUE(result.docs.empty());
      ++declined;
    }
  }
  EXPECT_GT(declined, 0u);
  EXPECT_EQ(defended.stats().declined, declined);
}

TEST(AsDeclineTest, DeclineIsDeterministic) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsDeclineEngine defended(*rig.engine, AsDeclineConfig{});
  const auto family = CorrelatedFamily(rig, 9);
  std::vector<QueryStatus> first_pass;
  for (const auto& q : family) first_pass.push_back(defended.Search(q).status);
  for (size_t i = 0; i < family.size(); ++i) {
    EXPECT_EQ(defended.Search(family[i]).status, first_pass[i]) << i;
  }
}

TEST(AsDeclineTest, DeclinedQueriesNotRecorded) {
  Rig rig = MakeTopicalRig(1050, 50);
  AsDeclineEngine defended(*rig.engine, AsDeclineConfig{});
  const auto family = CorrelatedFamily(rig, 9);
  for (const auto& q : family) defended.Search(q);
  EXPECT_EQ(defended.history().NumQueries() + defended.stats().declined,
            family.size());
}

TEST(AsDeclineTest, RecallLowerThanArbiOnCorrelatedFamilies) {
  // The whole point of virtual query processing (Section 5.2): AS-ARBI
  // answers what AS-DECLINE refuses.
  Rig rig = MakeTopicalRig(1050, 50);
  AsDeclineEngine decline(*rig.engine, AsDeclineConfig{});
  AsArbiEngine arbi(*rig.engine, AsArbiConfig{});
  size_t decline_docs = 0;
  size_t arbi_docs = 0;
  for (const auto& q : CorrelatedFamily(rig, 9)) {
    decline_docs += decline.Search(q).docs.size();
    arbi_docs += arbi.Search(q).docs.size();
  }
  EXPECT_GT(arbi_docs, decline_docs);
}

TEST(AsDeclineTest, BroadQueriesNeverDeclined) {
  Rig rig = MakeRig(800, 5);
  AsDeclineConfig config;
  config.cover_size = 2;  // only |q| <= 10 can trigger
  AsDeclineEngine defended(*rig.engine, config);
  for (const char* w : {"sports", "game", "team"}) {
    EXPECT_NE(defended.Search(rig.Q(w)).status, QueryStatus::kDeclined);
  }
}

}  // namespace
}  // namespace asup
