// Fuzz oracle for keyword-query parsing and canonicalization.
//
// Query identity (canonical string + hash) keys the answer caches and
// AS-ARBI's history, so canonicalization must be a total, stable function
// of the input text:
//  * hash() is exactly HashString(canonical());
//  * term ids are strictly ascending and valid vocabulary ids;
//  * an unknown word empties the term list (conjunctive semantics);
//  * re-parsing the canonical form is a fixed point for every field.

#include <cstdint>
#include <string>
#include <string_view>

#include "asup/engine/query.h"
#include "asup/text/vocabulary.h"
#include "asup/util/hash.h"
#include "fuzz_util.h"

namespace {

const asup::Vocabulary& TestVocabulary() {
  static const asup::Vocabulary* vocabulary = [] {
    auto* v = new asup::Vocabulary();
    // Single letters and digits so short fuzz tokens often resolve to
    // known terms, plus a few real words for dictionary-style inputs.
    for (char c = 'a'; c <= 'z'; ++c) v->AddWord(std::string(1, c));
    for (char c = '0'; c <= '9'; ++c) v->AddWord(std::string(1, c));
    for (const char* word :
         {"sigmod", "2012", "aggregate", "suppression", "enterprise",
          "search", "engine", "query", "sports", "patent"}) {
      v->AddWord(word);
    }
    return v;
  }();
  return *vocabulary;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  const asup::Vocabulary& vocabulary = TestVocabulary();

  const asup::KeywordQuery query = asup::KeywordQuery::Parse(vocabulary, text);
  FUZZ_ASSERT(query.hash() == asup::HashString(query.canonical()));
  FUZZ_ASSERT(query.empty() == query.canonical().empty());
  if (query.has_unknown_word()) FUZZ_ASSERT(query.terms().empty());

  asup::TermId previous = 0;
  bool first = true;
  for (const asup::TermId term : query.terms()) {
    FUZZ_ASSERT(term < vocabulary.size());
    if (!first) FUZZ_ASSERT(term > previous);
    previous = term;
    first = false;
  }

  const asup::KeywordQuery reparsed =
      asup::KeywordQuery::Parse(vocabulary, query.canonical());
  FUZZ_ASSERT(reparsed.canonical() == query.canonical());
  FUZZ_ASSERT(reparsed.hash() == query.hash());
  FUZZ_ASSERT(reparsed.terms() == query.terms());
  FUZZ_ASSERT(reparsed.has_unknown_word() == query.has_unknown_word());
  return 0;
}
