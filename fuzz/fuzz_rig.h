#ifndef ASUP_FUZZ_FUZZ_RIG_H_
#define ASUP_FUZZ_FUZZ_RIG_H_

#include <cstddef>

#include "asup/engine/search_engine.h"
#include "asup/index/inverted_index.h"
#include "asup/text/synthetic_corpus.h"

namespace asup_fuzz {

// The state-io harness and the seed-corpus generator must build the *same*
// engine: a defense-state snapshot embeds the corpus size, γ, and the coin
// key, and Load rejects mismatches — any drift here would turn every
// checked-in seed into a shallow "fingerprint mismatch" input.
inline constexpr size_t kRigCorpusSize = 96;
inline constexpr size_t kRigTopK = 4;

inline asup::SyntheticCorpusConfig RigCorpusConfig() {
  asup::SyntheticCorpusConfig config;
  config.vocabulary_size = 400;
  config.num_topics = 6;
  config.words_per_topic = 40;
  config.seed = 7;
  return config;
}

/// Corpus + index + undefended engine shared by the state-io fuzzing side.
/// The suppression engines under test are constructed per input (their
/// state is what the snapshot mutates); this immutable substrate is built
/// once.
struct Rig {
  asup::Corpus corpus;
  asup::InvertedIndex index;
  asup::PlainSearchEngine engine;

  Rig()
      : corpus(asup::SyntheticCorpusGenerator(RigCorpusConfig())
                   .Generate(kRigCorpusSize)),
        index(corpus),
        engine(index, kRigTopK) {}
};

}  // namespace asup_fuzz

#endif  // ASUP_FUZZ_FUZZ_RIG_H_
