// Fuzz oracle for the binary corpus reader (index/corpus_io.h).
//
// LoadCorpus consumes untrusted bytes (a corpus file shared between
// machines); it must reject malformed input gracefully and only ever
// produce corpora satisfying the Document/Corpus class invariants:
//  * strictly ascending term ids, positive frequencies, ids < |vocab|;
//  * unique document ids;
//  * Save ∘ Load reaches a canonical fixed point after one round trip.

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "asup/index/corpus_io.h"
#include "asup/text/corpus.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string input(reinterpret_cast<const char*>(data), size);
  std::istringstream in(input);
  const std::optional<asup::Corpus> corpus = asup::LoadCorpus(in);
  if (!corpus.has_value()) return 0;  // rejected — the common, boring case

  const asup::Vocabulary& vocabulary = corpus->vocabulary();
  for (const asup::Document& doc : corpus->documents()) {
    FUZZ_ASSERT(corpus->Contains(doc.id()));
    FUZZ_ASSERT(corpus->Get(doc.id()).id() == doc.id());
    asup::TermId previous = 0;
    bool first = true;
    for (const asup::TermFreq& entry : doc.terms()) {
      FUZZ_ASSERT(entry.freq > 0);
      FUZZ_ASSERT(entry.term < vocabulary.size());
      if (!first) FUZZ_ASSERT(entry.term > previous);
      previous = entry.term;
      first = false;
    }
  }

  std::ostringstream save1;
  FUZZ_ASSERT(asup::SaveCorpus(*corpus, save1));
  const std::string canonical = save1.str();
  std::istringstream in2(canonical);
  const std::optional<asup::Corpus> reloaded = asup::LoadCorpus(in2);
  FUZZ_ASSERT(reloaded.has_value());
  FUZZ_ASSERT(reloaded->size() == corpus->size());
  FUZZ_ASSERT(reloaded->vocabulary().size() == vocabulary.size());
  std::ostringstream save2;
  FUZZ_ASSERT(asup::SaveCorpus(*reloaded, save2));
  FUZZ_ASSERT(save2.str() == canonical);
  return 0;
}
