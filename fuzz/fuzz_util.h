#ifndef ASUP_FUZZ_FUZZ_UTIL_H_
#define ASUP_FUZZ_FUZZ_UTIL_H_

#include <cstdio>
#include <cstdlib>

/// Invariant check for the fuzz harnesses. Aborts (reported by libFuzzer
/// and the sanitizers, and fatal under the standalone driver) with a
/// message naming the broken property. Always on, in every build type —
/// a fuzz binary whose oracles compile out finds nothing.
#define FUZZ_ASSERT(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::fprintf(stderr, "FUZZ_ASSERT failed: %s at %s:%d\n", #cond, \
                   __FILE__, __LINE__);                                \
      std::abort();                                                    \
    }                                                                  \
  } while (0)

#endif  // ASUP_FUZZ_FUZZ_UTIL_H_
