// Regenerates the checked-in seed corpora under fuzz/corpus/.
//
//   ./build/fuzz/make_seed_corpora <repo>/fuzz/corpus
//
// Seeds matter most for the binary-format harnesses: a coverage-guided
// fuzzer mutating a *valid* snapshot penetrates far past the magic/
// fingerprint checks that reject random bytes immediately. The state-io
// seeds are produced by the exact rig configuration the harness uses
// (fuzz_rig.h), so their embedded fingerprints match at replay time.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "asup/engine/query.h"
#include "asup/index/block_codec.h"
#include "asup/index/corpus_io.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/state_io.h"
#include "fuzz_rig.h"

namespace {

namespace fs = std::filesystem;

void WriteSeed(const fs::path& dir, const std::string& name,
               const std::string& bytes) {
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", (dir / name).c_str());
    std::exit(1);
  }
}

/// Single- and two-word queries drawn from actual documents, so they match.
std::vector<asup::KeywordQuery> RigQueries(const asup_fuzz::Rig& rig) {
  std::vector<asup::KeywordQuery> queries;
  const auto& docs = rig.corpus.documents();
  for (size_t i = 0; i < docs.size() && queries.size() < 8; i += 11) {
    const auto& terms = docs[i].terms();
    if (terms.empty()) continue;
    queries.push_back(asup::KeywordQuery::FromTerms(rig.corpus.vocabulary(),
                                                    {terms.front().term}));
    if (terms.size() >= 2) {
      queries.push_back(asup::KeywordQuery::FromTerms(
          rig.corpus.vocabulary(), {terms.front().term, terms.back().term}));
    }
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <fuzz/corpus output dir>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);

  // --- fuzz_tokenizer: representative text shapes -------------------------
  const fs::path tokenizer_dir = root / "fuzz_tokenizer";
  WriteSeed(tokenizer_dir, "prose",
            "Aggregate suppression FOR enterprise search engines, "
            "SIGMOD 2012.");
  WriteSeed(tokenizer_dir, "punctuation", "a--b..c//d\\e(f)g[h]i{j}k;l:m!");
  WriteSeed(tokenizer_dir, "digits", "2012 0x1f 3.14159 007 42nd-street");
  WriteSeed(tokenizer_dir, "high_bytes", std::string("caf\xc3\xa9 "
                                                     "na\xc3\xafve \xff\xfe"));
  WriteSeed(tokenizer_dir, "whitespace", " \t\r\n  spaced \t out \n");
  WriteSeed(tokenizer_dir, "repeats", "echo echo ECHO eChO echo");

  // --- fuzz_query: canonicalization-relevant shapes -----------------------
  const fs::path query_dir = root / "fuzz_query";
  WriteSeed(query_dir, "known_words", "enterprise search engine");
  WriteSeed(query_dir, "case_and_dups", "SIGMOD sigmod SiGmOd 2012 2012");
  WriteSeed(query_dir, "unknown_word", "aggregate zzzunknownzzz suppression");
  WriteSeed(query_dir, "letters", "c b a a b c z y x");
  WriteSeed(query_dir, "empty", "");
  WriteSeed(query_dir, "separators_only", "-- .. // !! ??");

  // --- fuzz_corpus_io: valid corpus files + near-valid mutants ------------
  asup_fuzz::Rig rig;
  const fs::path corpus_dir = root / "fuzz_corpus_io";
  {
    asup::SyntheticCorpusConfig small = asup_fuzz::RigCorpusConfig();
    small.vocabulary_size = 60;
    small.num_topics = 2;
    small.words_per_topic = 10;
    asup::SyntheticCorpusGenerator generator(small);
    const asup::Corpus tiny = generator.Generate(12);
    std::ostringstream out;
    if (!asup::SaveCorpus(tiny, out)) return 1;
    const std::string bytes = out.str();
    WriteSeed(corpus_dir, "valid_corpus", bytes);
    WriteSeed(corpus_dir, "truncated", bytes.substr(0, bytes.size() / 2));
    std::string bad_magic = bytes;
    bad_magic[0] ^= 0x20;
    WriteSeed(corpus_dir, "bad_magic", bad_magic);
    std::ostringstream empty_out;
    const asup::Corpus empty = generator.Generate(0);
    if (!asup::SaveCorpus(empty, empty_out)) return 1;
    WriteSeed(corpus_dir, "empty_corpus", empty_out.str());
  }
  {
    // Regression inputs for validation the saver can never produce
    // (mirrors the crafted cases in tests/index_corpus_io_test.cc).
    auto append_var = [](uint32_t value, std::string& out) {
      while (value >= 0x80) {
        out.push_back(static_cast<char>(value | 0x80));
        value >>= 7;
      }
      out.push_back(static_cast<char>(value));
    };
    std::string header = "ASUP";
    header += std::string("\x01\x00\x00\x00", 4);
    append_var(2, header);  // vocab: "aa", "bb"
    append_var(2, header);
    header += "aa";
    append_var(2, header);
    header += "bb";

    std::string duplicate_ids = header;
    append_var(2, duplicate_ids);
    for (int copy = 0; copy < 2; ++copy) {
      append_var(7, duplicate_ids);  // same doc id twice
      append_var(3, duplicate_ids);
      append_var(1, duplicate_ids);
      append_var(0, duplicate_ids);
      append_var(3, duplicate_ids);
    }
    WriteSeed(corpus_dir, "duplicate_doc_ids", duplicate_ids);

    std::string repeated_term = header;
    append_var(1, repeated_term);
    append_var(1, repeated_term);
    append_var(4, repeated_term);
    append_var(2, repeated_term);
    append_var(1, repeated_term);  // term 1
    append_var(2, repeated_term);
    append_var(0, repeated_term);  // zero delta: term 1 again
    append_var(2, repeated_term);
    WriteSeed(corpus_dir, "repeated_term_id", repeated_term);

    std::string huge_count = header;
    append_var(1u << 28, huge_count);  // claims 2^28 docs, provides none
    WriteSeed(corpus_dir, "huge_doc_count", huge_count);

    // Varbyte-decoder regressions (the ReadVarByte hardening): a varint
    // cut mid-continuation, and overlong encodings a canonical encoder
    // never emits — six continuation bytes and a five-byte value whose
    // top nibble overflows uint32. The loader must reject, not read past
    // the buffer or shift past bit 31.
    std::string truncated_varint = header;
    truncated_varint += '\x80';  // doc count promises a next byte that...
    WriteSeed(corpus_dir, "truncated_varint", truncated_varint);

    std::string overlong_varint = header;
    overlong_varint += std::string("\x80\x80\x80\x80\x80\x01", 6);
    WriteSeed(corpus_dir, "overlong_varint", overlong_varint);

    std::string shift_overflow_varint = header;
    shift_overflow_varint += std::string("\x80\x80\x80\x80\x10", 5);
    WriteSeed(corpus_dir, "shift_overflow_varint", shift_overflow_varint);
  }

  // --- fuzz_block_codec: valid blocks + crafted malformed ones ------------
  // Harness input shape: byte 0 selects the posting count, the rest is the
  // candidate block payload (see fuzz_block_codec.cc).
  {
    const fs::path block_dir = root / "fuzz_block_codec";
    auto encode = [](const std::vector<asup::Posting>& postings) {
      std::vector<uint8_t> bytes;
      asup::blockcodec::EncodeBlock(postings, bytes);
      std::string out;
      // count byte 1..128 maps from (count - 1); count <= 128 here.
      out.push_back(static_cast<char>(postings.size() - 1));
      out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
      return out;
    };

    // Tail-only block (count < 4: pure scalar varbyte path).
    WriteSeed(block_dir, "tail_only",
              encode({{5, 1}, {6, 2}, {300, 9}}));
    // One exact group, no tail.
    WriteSeed(block_dir, "one_group",
              encode({{0, 1}, {1, 1}, {70000, 130}, {70001, 70000}}));
    // Groups plus tail, mixed byte widths.
    {
      std::vector<asup::Posting> postings;
      uint32_t doc = 3;
      for (uint32_t i = 0; i < 11; ++i) {
        postings.push_back({doc, 1 + (i * i) % 1000});
        doc += 1 + (i % 3 == 0 ? 1u << 17 : 2u);
      }
      WriteSeed(block_dir, "groups_and_tail", encode(postings));
    }
    // Full block of kMaxBlockPostings postings.
    {
      std::vector<asup::Posting> postings;
      for (uint32_t i = 0; i < asup::blockcodec::kMaxBlockPostings; ++i) {
        postings.push_back({i * 7, 1 + i % 5});
      }
      WriteSeed(block_dir, "full_block", encode(postings));
    }
    // Malformed mutants: truncation, non-canonical group padding,
    // zero delta, zero freq — the reject paths the Try-variant must take
    // without reading out of bounds.
    {
      const std::string valid = encode({{5, 1}, {6, 2}, {300, 9}, {301, 4}});
      WriteSeed(block_dir, "truncated", valid.substr(0, valid.size() / 2));
      WriteSeed(block_dir, "padded_group",
                std::string("\x03", 1) +
                    std::string("\x01\x05\x00\x01\x01\x01"
                                "\x00\x01\x01\x01\x01",
                                11));
      WriteSeed(block_dir, "zero_delta",
                std::string("\x01\x05\x00\x01\x01", 5));
      WriteSeed(block_dir, "zero_freq",
                std::string("\x01\x05\x01\x01\x00", 5));
      WriteSeed(block_dir, "garbage",
                std::string("\x7f\xff\xff\xff\xff\xff\xff\xff", 8));
    }
  }

  // --- fuzz_state_io: defense snapshots from the harness's own rig --------
  const fs::path state_dir = root / "fuzz_state_io";
  const std::vector<asup::KeywordQuery> queries = RigQueries(rig);
  {
    asup::AsSimpleEngine simple(rig.engine, asup::AsSimpleConfig{});
    std::ostringstream fresh;
    if (!asup::SaveDefenseState(simple, fresh)) return 1;
    WriteSeed(state_dir, "simple_fresh", fresh.str());
    for (const auto& query : queries) simple.Search(query);
    for (const auto& query : queries) simple.Search(query);  // re-issue
    std::ostringstream warm;
    if (!asup::SaveDefenseState(simple, warm)) return 1;
    const std::string bytes = warm.str();
    WriteSeed(state_dir, "simple_warm", bytes);
    WriteSeed(state_dir, "simple_truncated",
              bytes.substr(0, bytes.size() - bytes.size() / 4));
  }
  {
    asup::AsArbiEngine arbi(rig.engine, asup::AsArbiConfig{});
    for (const auto& query : queries) arbi.Search(query);
    for (const auto& query : queries) arbi.Search(query);  // re-issue
    std::ostringstream warm;
    if (!asup::SaveDefenseState(arbi, warm)) return 1;
    const std::string bytes = warm.str();
    WriteSeed(state_dir, "arbi_warm", bytes);
    std::string flipped = bytes;
    flipped[bytes.size() / 2] ^= 0x01;
    WriteSeed(state_dir, "arbi_bitflip", flipped);
  }

  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
