// Standalone replacement for libFuzzer's driver, linked into the harnesses
// when the toolchain has no -fsanitize=fuzzer (e.g. a GCC-only container).
// Replays every file — and every file inside a directory — given on the
// command line through LLVMFuzzerTestOneInput, in sorted path order so a
// run over a seed corpus is deterministic. An input that trips a harness
// oracle aborts the process, exactly as it would under libFuzzer.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<std::string> CollectInputs(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(path.string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  const std::vector<std::string> files = CollectInputs(argc, argv);
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "standalone driver: cannot open %s\n",
                   file.c_str());
      return 2;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    static const uint8_t kEmpty = 0;  // non-null pointer for empty inputs
    const uint8_t* data =
        bytes.empty() ? &kEmpty
                      : reinterpret_cast<const uint8_t*>(bytes.data());
    LLVMFuzzerTestOneInput(data, bytes.size());
  }
  std::printf("standalone driver: %zu input(s) replayed clean\n",
              files.size());
  return 0;
}
