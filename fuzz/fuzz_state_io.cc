// Fuzz oracle for defense-state persistence (suppress/state_io.h).
//
// A defense-state snapshot is the engine's memory of what it has already
// disclosed; feeding it corrupt bytes must never crash, and the documented
// contract — "the engine is unchanged on failure" — must hold for both
// engines. For accepted snapshots, Save canonicalizes (sorted cache
// entries, local-id-ordered Θ_R, re-parsed history queries), so one
// Save ∘ Load round trip must reach a bytes-stable fixed point.

#include <cstdint>
#include <sstream>
#include <string>

#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/suppress/state_io.h"
#include "fuzz_rig.h"
#include "fuzz_util.h"

namespace {

asup_fuzz::Rig& SharedRig() {
  static asup_fuzz::Rig* rig = new asup_fuzz::Rig();
  return *rig;
}

void CheckSimple(asup::PlainSearchEngine& base, const std::string& bytes) {
  const asup::AsSimpleConfig config;
  asup::AsSimpleEngine engine(base, config);
  std::istringstream in(bytes);
  if (!asup::LoadDefenseState(engine, in)) {
    FUZZ_ASSERT(engine.NumActivatedDocs() == 0);  // unchanged on failure
    return;
  }
  std::ostringstream save1;
  FUZZ_ASSERT(asup::SaveDefenseState(engine, save1));
  asup::AsSimpleEngine replay(base, config);
  std::istringstream in2(save1.str());
  FUZZ_ASSERT(asup::LoadDefenseState(replay, in2));
  FUZZ_ASSERT(replay.NumActivatedDocs() == engine.NumActivatedDocs());
  std::ostringstream save2;
  FUZZ_ASSERT(asup::SaveDefenseState(replay, save2));
  FUZZ_ASSERT(save2.str() == save1.str());
}

void CheckArbi(asup::PlainSearchEngine& base, const std::string& bytes) {
  const asup::AsArbiConfig config;
  asup::AsArbiEngine engine(base, config);
  std::istringstream in(bytes);
  if (!asup::LoadDefenseState(engine, in)) {
    // Unchanged on failure — including the inner AS-SIMPLE state, which the
    // loader stages so a corrupt history section cannot half-commit.
    FUZZ_ASSERT(engine.history().NumQueries() == 0);
    FUZZ_ASSERT(engine.simple_engine().NumActivatedDocs() == 0);
    return;
  }
  std::ostringstream save1;
  FUZZ_ASSERT(asup::SaveDefenseState(engine, save1));
  asup::AsArbiEngine replay(base, config);
  std::istringstream in2(save1.str());
  FUZZ_ASSERT(asup::LoadDefenseState(replay, in2));
  FUZZ_ASSERT(replay.history().NumQueries() == engine.history().NumQueries());
  FUZZ_ASSERT(replay.simple_engine().NumActivatedDocs() ==
              engine.simple_engine().NumActivatedDocs());
  std::ostringstream save2;
  FUZZ_ASSERT(asup::SaveDefenseState(replay, save2));
  FUZZ_ASSERT(save2.str() == save1.str());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  asup_fuzz::Rig& rig = SharedRig();
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  CheckSimple(rig.engine, bytes);
  CheckArbi(rig.engine, bytes);
  return 0;
}
