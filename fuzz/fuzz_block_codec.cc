// Fuzz oracle for the block posting codec (index/block_codec.h).
//
// TryDecodeBlock consumes untrusted bytes; it must reject truncated,
// overlong and otherwise malformed blocks without ever reading out of
// bounds, and every block it accepts must satisfy the posting invariants
// (strictly ascending doc ids, frequencies >= 1) and re-encode to exactly
// the bytes it consumed — the format is canonical, so decode ∘ encode is
// the identity on accepted inputs.
//
// Input shape: byte 0 selects the posting count in [1, kMaxBlockPostings],
// the rest is the candidate block payload.

#include <cstdint>
#include <vector>

#include "asup/index/block_codec.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 1) return 0;
  namespace bc = asup::blockcodec;
  const size_t count = 1 + data[0] % bc::kMaxBlockPostings;
  const std::vector<uint8_t> bytes(data + 1, data + size);

  size_t offset = 0;
  bc::DecodedBlock block;
  if (!bc::TryDecodeBlock(bytes, offset, count, block)) {
    // Rejection may leave offset mid-stream (callers discard it), but it
    // never runs past the input.
    FUZZ_ASSERT(offset <= bytes.size());
    return 0;
  }

  FUZZ_ASSERT(block.count == count);
  FUZZ_ASSERT(offset <= bytes.size());
  for (size_t i = 1; i < count; ++i) {
    FUZZ_ASSERT(block.docs[i - 1] < block.docs[i]);
  }
  std::vector<asup::Posting> postings;
  postings.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    FUZZ_ASSERT(block.freqs[i] >= 1);
    postings.push_back({block.docs[i], block.freqs[i]});
  }

  // Canonical fixed point: re-encoding reproduces the consumed bytes.
  std::vector<uint8_t> reencoded;
  bc::EncodeBlock(postings, reencoded);
  FUZZ_ASSERT(reencoded.size() == offset);
  for (size_t i = 0; i < offset; ++i) {
    FUZZ_ASSERT(reencoded[i] == bytes[i]);
  }
  return 0;
}
