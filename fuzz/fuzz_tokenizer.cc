// Fuzz oracle for the tokenizer and bag-of-words document construction.
//
// Properties checked on arbitrary byte input:
//  * every token is non-empty, alphanumeric, lowercase;
//  * tokenizing the space-joined token list is a fixed point (the canonical
//    form queries are built from must be stable);
//  * a Document built from the text has strictly ascending term ids,
//    positive frequencies, and token-count accounting that adds up.

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asup/text/document.h"
#include "asup/text/tokenizer.h"
#include "asup/text/vocabulary.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  const std::vector<std::string> tokens = asup::Tokenize(text);
  for (const std::string& token : tokens) {
    FUZZ_ASSERT(!token.empty());
    for (const char c : token) {
      const unsigned char uc = static_cast<unsigned char>(c);
      FUZZ_ASSERT(std::isalnum(uc));
      FUZZ_ASSERT(!std::isupper(uc));
    }
  }

  std::string joined;
  for (const std::string& token : tokens) {
    if (!joined.empty()) joined.push_back(' ');
    joined += token;
  }
  FUZZ_ASSERT(asup::Tokenize(joined) == tokens);

  asup::Vocabulary vocabulary;
  const asup::Document doc = asup::MakeDocumentFromText(1, text, vocabulary);
  FUZZ_ASSERT(doc.length() == tokens.size());
  uint64_t total_freq = 0;
  asup::TermId previous = 0;
  bool first = true;
  for (const asup::TermFreq& entry : doc.terms()) {
    FUZZ_ASSERT(entry.freq > 0);
    FUZZ_ASSERT(entry.term < vocabulary.size());
    if (!first) FUZZ_ASSERT(entry.term > previous);
    FUZZ_ASSERT(doc.FrequencyOf(entry.term) == entry.freq);
    previous = entry.term;
    first = false;
    total_freq += entry.freq;
  }
  FUZZ_ASSERT(total_freq == tokens.size());
  return 0;
}
