#!/usr/bin/env bash
# Verifies the ASUP_METRICS=OFF compile-out contract (DESIGN.md §11): a
# metrics-OFF build must not define or reference any asup::obs symbol in
# the core archives — the macros expand to nothing, so even an accidental
# direct call into the obs layer (bypassing the macros) fails this gate.
#
# Usage: tools/check_no_obs_symbols.sh <metrics-off-build-dir>
set -euo pipefail

build_dir="${1:?usage: check_no_obs_symbols.sh <metrics-off-build-dir>}"

if [ -e "$build_dir/src/libasup_obs.a" ]; then
  echo "FAIL: $build_dir/src/libasup_obs.a exists in a metrics-OFF build" >&2
  exit 1
fi

# Any asup::obs:: symbol is a violation; the named watchtower types get
# their own explicit greps so a regression points at the subsystem that
# leaked (event log, per-client windows, or the suspicion scorer) instead
# of a generic namespace hit.
named_types="EventLog Watchtower ClientWindowTable EmitEvent"

status=0
checked=0
for archive in "$build_dir"/src/libasup_*.a; do
  [ -e "$archive" ] || continue
  checked=$((checked + 1))
  symbols="$(nm -C "$archive" 2>/dev/null || true)"
  for type_name in $named_types; do
    if grep -q "asup::obs::${type_name}\b" <<<"$symbols"; then
      echo "FAIL: $archive leaks the compiled-out obs::${type_name}:" >&2
      grep "asup::obs::${type_name}\b" <<<"$symbols" | head >&2
      status=1
    fi
  done
  if grep -q 'asup::obs::' <<<"$symbols"; then
    echo "FAIL: $archive carries asup::obs symbols:" >&2
    grep 'asup::obs::' <<<"$symbols" | head >&2
    status=1
  fi
done

if [ "$checked" -eq 0 ]; then
  echo "FAIL: no libasup_*.a archives found under $build_dir/src" >&2
  exit 1
fi

if [ "$status" -eq 0 ]; then
  echo "OK: $checked archives, no asup::obs symbols"
fi
exit "$status"
