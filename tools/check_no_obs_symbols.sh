#!/usr/bin/env bash
# Verifies the ASUP_METRICS=OFF compile-out contract (DESIGN.md §11): a
# metrics-OFF build must not define or reference any asup::obs symbol in
# the core archives — the macros expand to nothing, so even an accidental
# direct call into the obs layer (bypassing the macros) fails this gate.
#
# Usage: tools/check_no_obs_symbols.sh <metrics-off-build-dir>
set -euo pipefail

build_dir="${1:?usage: check_no_obs_symbols.sh <metrics-off-build-dir>}"

if [ -e "$build_dir/src/libasup_obs.a" ]; then
  echo "FAIL: $build_dir/src/libasup_obs.a exists in a metrics-OFF build" >&2
  exit 1
fi

status=0
checked=0
for archive in "$build_dir"/src/libasup_*.a; do
  [ -e "$archive" ] || continue
  checked=$((checked + 1))
  if nm -C "$archive" 2>/dev/null | grep -q 'asup::obs::'; then
    echo "FAIL: $archive carries asup::obs symbols:" >&2
    nm -C "$archive" | grep 'asup::obs::' | head >&2
    status=1
  fi
done

if [ "$checked" -eq 0 ]; then
  echo "FAIL: no libasup_*.a archives found under $build_dir/src" >&2
  exit 1
fi

if [ "$status" -eq 0 ]; then
  echo "OK: $checked archives, no asup::obs symbols"
fi
exit "$status"
