#!/usr/bin/env python3
"""asup_lint: determinism & locking lint for the asup sources.

The defense's core guarantee (paper Section 2.1) is that re-issuing a query
returns a bitwise-identical answer; nondeterministic answers are themselves
a side channel. This lint rejects the constructs that historically break
that guarantee, plus the lock-discipline convention of the threading layer.

Rules (all scoped to src/ unless noted):

  asup-banned-random       rand()/srand() and std::random_device: all
                           randomness must flow through the seeded asup::Rng
                           or the keyed DeterministicCoin.
  asup-banned-time         time()/clock()/gettimeofday(): wall-clock reads
                           in library logic break replay (timing belongs in
                           util/stopwatch via <chrono>). Also bans
                           std::chrono::system_clock: it is not monotonic
                           (NTP slews/steps corrupt latency measurements),
                           so every timing path must use the steady clock
                           that util/stopwatch wraps.
  asup-unordered-iteration deterministic paths only (src/asup/suppress/,
                           src/asup/engine/): iterating a std::unordered_map
                           or std::unordered_set observes hash-table order,
                           which varies across platforms/libstdc++ versions.
                           Canonicalize (sort) or use an ordered container.
  asup-manual-lock         .lock()/.unlock() calls: RAII guards only
                           (MutexLock/ReaderLock/WriterLock).
  asup-raw-mutex           std::mutex / std::shared_mutex / std::lock_guard
                           / std::unique_lock / std::shared_lock (and their
                           recursive/timed/scoped cousins) outside
                           src/asup/util/: all locking goes through the
                           capability-annotated wrappers in
                           util/annotated_mutex.h so Clang's
                           -Wthread-safety analysis sees every acquire and
                           every guarded access (DESIGN.md §14). The
                           wrappers themselves (src/asup/util/) are the one
                           place raw primitives may appear.
  asup-locked-requires     a method named *Locked asserts "caller holds the
                           mutex"; its declaration must say which one with
                           ASUP_REQUIRES / ASUP_REQUIRES_SHARED so the
                           analysis can enforce the precondition at every
                           call site. (Out-of-line Class::FooLocked
                           definitions are exempt — the attribute lives on
                           the in-class declaration.)
  asup-obs-macro           hot paths (src/asup/engine/, src/asup/suppress/)
                           must emit telemetry through the ASUP_METRIC_* /
                           ASUP_EVENT_* / ASUP_TRACE_* macros, never by
                           calling the obs registry, event log, or
                           watchtower directly (obs::MetricsRegistry,
                           obs::EmitEvent, obs::Install*/Installed*,
                           obs::EventLog, obs::Watchtower,
                           obs::ClientWindowTable). The macros compile to
                           nothing under ASUP_METRICS=OFF; a direct call
                           drags asup::obs symbols into the defense
                           libraries and breaks the compile-out contract
                           that tools/check_no_obs_symbols.sh enforces.
                           Trace *types* (obs::Stage, obs::ScopedStageTimer,
                           obs::ActiveTrace) stay allowed: they only appear
                           inside ASUP_METRICS_ENABLED blocks.
  asup-log-ratio-segment   log(x)/log(γ) segment-index arithmetic anywhere
                           but src/asup/suppress/segment.cc: the double
                           log-ratio lands a hair below the integer at
                           exact powers of γ (log(1000)/log(10) =
                           2.9999999999999996) and truncation reports the
                           segment below — the fig21 boundary-drift bug.
                           Segment indices come from
                           IndistinguishableSegment::IndexOf, which shares
                           the exact multiply loop with the segment
                           constructor.
  asup-posting-varbyte     src/asup/index/ outside block_codec.{h,cc}: the
                           varbyte primitives (AppendVarByte, ReadVarByte,
                           TryReadVarByte) must not touch posting payload
                           bytes anywhere but the block codec TU. Posting
                           payloads are group-varint *blocks*; a stray
                           scalar-varbyte read silently misparses them (or
                           reintroduces a second, divergent decoder). Go
                           through PostingList::Iterator / Decode() or the
                           blockcodec Encode/TryDecodeBlock entry points.
  asup-raw-assert          validation-critical paths (src/asup/index/,
                           src/asup/suppress/, src/asup/text/,
                           src/asup/engine/, src/asup/eval/): a raw
                           assert() compiles out in Release, so the check
                           it expresses silently vanishes from production
                           decoders exactly where untrusted bytes arrive
                           (the ReadVarByte out-of-bounds bug). Use
                           ASUP_CHECK (always on where it matters) or
                           ASUP_DCHECK (explicitly debug-only) from
                           util/check.h; static_assert is fine.

Suppressing a finding requires an inline justification on the same line or
on the preceding line:

    // NOLINT(asup-unordered-iteration): order canonicalized by sort below
    // NOLINTNEXTLINE(asup-banned-time): example code, not library logic

A NOLINT for an asup-* rule without a ': reason' is itself an error.

Exit status: 0 when clean, 1 with findings, 2 on usage errors.
"""

import argparse
import re
import sys
from pathlib import Path

DETERMINISTIC_SUBDIRS = ("asup/suppress", "asup/engine")
RAW_ASSERT_SUBDIRS = (
    "asup/index",
    "asup/suppress",
    "asup/text",
    "asup/engine",
    "asup/eval",
)

# assert( not preceded by an identifier character: matches the macro call
# but not static_assert( or FooAssert(.
RAW_ASSERT_RE = re.compile(r"(?<![\w])assert\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([^)]*)\)")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock)\b"
)
# A *Locked declaration/definition line: return-type tokens, then an
# optionally-qualified name ending in "Locked", then '('. The keyword
# lookahead rejects `return FooLocked(...)` call statements; member calls
# (`obj.FooLocked(`) never match because '.' is not a type-token character.
# Direct observability-plumbing calls that the ASUP_* macros wrap. Matching
# both the obs::-qualified and bare spellings catches `using namespace`
# escapes; the trace helper types (Stage, ScopedStageTimer, ActiveTrace)
# are deliberately absent — they are the sanctioned way to scope a span.
OBS_DIRECT_RE = re.compile(
    r"\b(?:obs::)?(?:EmitEvent|EventSinksInstalled|"
    r"Install(?:ed)?(?:EventLog|Watchtower)|MetricsRegistry)\b"
    r"|\bobs::(?:EventLog|Watchtower|ClientWindowTable)\b"
)
# A quotient of two log calls — log(x)/log(y), std::log, log2, log10, with
# arbitrary (possibly nested) arguments on the left as long as the '/' and
# the second log sit on the same line. Change-of-base arithmetic is how
# every log-ratio segment index has been written; there is no legitimate
# same-line log/log quotient in this codebase outside segment.cc.
LOG_RATIO_RE = re.compile(
    r"\b(?:std::)?log[210]*\s*\(.*?\)\s*/\s*(?:std::)?log[210]*\s*\(")
# The scalar varbyte primitives of the posting codec; outside the codec TU
# itself these must not appear anywhere in the index layer.
POSTING_VARBYTE_RE = re.compile(
    r"\b(?:AppendVarByte|TryReadVarByte|ReadVarByte)\s*\(")
LOCKED_DECL_RE = re.compile(
    r"^\s*(?!return\b|throw\b|co_return\b)"
    r"(?:[\w:<>,*&~\[\]]+\s+)+((?:\w+::)*\w*Locked)\s*\(")
NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE)?\(([^)]*)\)(:?)\s*(.*)")

BANNED_PATTERNS = (
    ("asup-banned-random", re.compile(r"(?<![\w:.])s?rand\s*\("),
     "rand()/srand() is nondeterministic across platforms; use asup::Rng"),
    ("asup-banned-random", re.compile(r"\bstd::random_device\b"),
     "std::random_device defeats seeded replay; use asup::Rng / Fork()"),
    ("asup-banned-time", re.compile(r"(?<![\w:.\"])(?:std::)?time\s*\("),
     "wall-clock time() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"(?<![\w:.\"])(?:std::)?clock\s*\("),
     "clock() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"\bgettimeofday\s*\("),
     "gettimeofday() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"\b(?:std::)?chrono::system_clock\b"),
     "system_clock is not monotonic; time with util/stopwatch "
     "(steady_clock)"),
    ("asup-manual-lock", re.compile(r"\.\s*(?:lock|unlock)\s*\(\s*\)"),
     "manual lock()/unlock(); use an RAII guard"),
)


def strip_code_noise(line):
    """Removes string/char literals and // comments so prose never matches."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
        else:
            out.append(c)
        i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, lineno, rule, message):
        self.items.append((path, lineno, rule, message))


def nolint_rules(raw_line, lineno, path, findings):
    """Returns the set of rules suppressed by a NOLINT comment on raw_line.

    An asup-* NOLINT without a reason is reported as its own finding.
    """
    match = NOLINT_RE.search(raw_line)
    if not match:
        return frozenset()
    rules = {r.strip() for r in match.group(1).split(",")}
    asup_rules = {r for r in rules if r.startswith("asup-")}
    if asup_rules and (match.group(2) != ":" or not match.group(3).strip()):
        findings.add(path, lineno, "asup-nolint-reason",
                     "NOLINT of an asup-* rule requires ': <reason>'")
    return frozenset(rules)


def collect_unordered_names(text):
    return set(UNORDERED_DECL_RE.findall(text))


def paired_header_text(path):
    if path.suffix == ".cc":
        header = path.with_suffix(".h")
        if header.exists():
            return header.read_text(encoding="utf-8")
    return ""


def check_locked_requires(clean_lines, is_suppressed, path, findings):
    """*Locked declarations must state their precondition via ASUP_REQUIRES.

    The old lint guessed at lock discipline from the function *body* (no
    guard construction inside *Locked). With the capability annotations of
    util/annotated_mutex.h the precondition is machine-checked by Clang, so
    the lint's job shrinks to making sure the annotation is actually there:
    a *Locked method whose declaration lacks ASUP_REQUIRES[_SHARED] silently
    opts out of the analysis. Out-of-line `Class::FooLocked` definitions are
    skipped — attributes belong on the in-class declaration.
    """
    for idx, line in enumerate(clean_lines):
        match = LOCKED_DECL_RE.search(line.rstrip())
        if not match:
            continue
        name = match.group(1)
        if "::" in name:
            continue  # out-of-line definition; declaration carries the
            # attribute
        # Gather the declaration up to its terminator: ';' for a pure
        # declaration, '{' for an inline definition (attributes precede
        # either). 12 lines is generous for one signature.
        span = []
        for j in range(idx, min(idx + 12, len(clean_lines))):
            decl_line = clean_lines[j]
            cut = len(decl_line)
            for terminator in ("{", ";"):
                pos = decl_line.find(terminator)
                if pos != -1:
                    cut = min(cut, pos)
            span.append(decl_line[:cut])
            if cut != len(decl_line):
                break
        declaration = " ".join(span)
        if "ASUP_REQUIRES" in declaration:  # matches _SHARED too
            continue
        if is_suppressed(idx + 1, "asup-locked-requires"):
            continue
        findings.add(
            path, idx + 1, "asup-locked-requires",
            f"{name}() asserts the caller holds a lock; declare which one "
            "with ASUP_REQUIRES(...) / ASUP_REQUIRES_SHARED(...)")


def lint_file(path, rel, findings):
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    clean_lines = [strip_code_noise(l) for l in raw_lines]

    suppressed = {}
    for lineno, raw in enumerate(raw_lines, 1):
        rules = nolint_rules(raw, lineno, rel, findings)
        if not rules:
            continue
        target = lineno + 1 if "NOLINTNEXTLINE" in raw else lineno
        suppressed.setdefault(target, set()).update(rules)

    def is_suppressed(lineno, rule):
        rules = suppressed.get(lineno, ())
        return rule in rules or "*" in rules

    for lineno, line in enumerate(clean_lines, 1):
        for rule, pattern, message in BANNED_PATTERNS:
            if pattern.search(line) and not is_suppressed(lineno, rule):
                findings.add(rel, lineno, rule, message)

    posix_rel = rel.replace("\\", "/")
    if "asup/util/" not in posix_rel:
        for lineno, line in enumerate(clean_lines, 1):
            if RAW_MUTEX_RE.search(line) and \
                    not is_suppressed(lineno, "asup-raw-mutex"):
                findings.add(
                    rel, lineno, "asup-raw-mutex",
                    "raw std:: locking primitive; use the annotated "
                    "wrappers in util/annotated_mutex.h (Mutex, "
                    "SharedMutex, MutexLock, ReaderLock, WriterLock) so "
                    "the thread-safety analysis sees the acquire")

    if not posix_rel.endswith("asup/suppress/segment.cc"):
        for lineno, line in enumerate(clean_lines, 1):
            if LOG_RATIO_RE.search(line) and \
                    not is_suppressed(lineno, "asup-log-ratio-segment"):
                findings.add(
                    rel, lineno, "asup-log-ratio-segment",
                    "log(x)/log(y) change-of-base arithmetic truncates one "
                    "segment low at exact powers (log(1000)/log(10) < 3); "
                    "use IndistinguishableSegment::IndexOf")

    if "asup/index/" in posix_rel and \
            not posix_rel.endswith(("block_codec.cc", "block_codec.h")):
        for lineno, line in enumerate(clean_lines, 1):
            if POSTING_VARBYTE_RE.search(line) and \
                    not is_suppressed(lineno, "asup-posting-varbyte"):
                findings.add(
                    rel, lineno, "asup-posting-varbyte",
                    "scalar varbyte call on posting bytes outside the "
                    "block codec TU; posting payloads are group-varint "
                    "blocks — use PostingList::Iterator/Decode() or the "
                    "blockcodec entry points")

    check_locked_requires(clean_lines, is_suppressed, rel, findings)

    if any(d in rel.replace("\\", "/") for d in RAW_ASSERT_SUBDIRS):
        for lineno, line in enumerate(clean_lines, 1):
            if RAW_ASSERT_RE.search(line) and \
                    not is_suppressed(lineno, "asup-raw-assert"):
                findings.add(
                    rel, lineno, "asup-raw-assert",
                    "raw assert() compiles out in Release; use ASUP_CHECK "
                    "or ASUP_DCHECK (util/check.h)")

    deterministic = any(d in rel.replace("\\", "/")
                        for d in DETERMINISTIC_SUBDIRS)
    if deterministic:
        for lineno, line in enumerate(clean_lines, 1):
            if OBS_DIRECT_RE.search(line) and \
                    not is_suppressed(lineno, "asup-obs-macro"):
                findings.add(
                    rel, lineno, "asup-obs-macro",
                    "direct obs registry/event-log call in a hot path; "
                    "emit through the ASUP_METRIC_* / ASUP_EVENT_* macros "
                    "so the call compiles out under ASUP_METRICS=OFF")
        names = collect_unordered_names(text)
        names |= collect_unordered_names(paired_header_text(path))
        if names:
            name_re = re.compile(
                r"\b(?:" + "|".join(re.escape(n) for n in sorted(names)) +
                r")\b")
            for lineno, line in enumerate(clean_lines, 1):
                match = RANGE_FOR_RE.search(line)
                if match and name_re.search(match.group(1)) and \
                        not is_suppressed(lineno, "asup-unordered-iteration"):
                    findings.add(
                        rel, lineno, "asup-unordered-iteration",
                        "iteration over an unordered container in a "
                        "deterministic path; canonicalize the order")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        src = root / "src"
        if not src.is_dir():
            print(f"asup_lint: no src/ under {root}", file=sys.stderr)
            return 2
        files = sorted(p for suffix in ("*.cc", "*.h")
                       for p in src.rglob(suffix))

    findings = Findings()
    for path in files:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        lint_file(path, rel, findings)

    for path, lineno, rule, message in sorted(findings.items):
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings.items:
        print(f"asup_lint: {len(findings.items)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"asup_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
