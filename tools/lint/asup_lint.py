#!/usr/bin/env python3
"""asup_lint: determinism & locking lint for the asup sources.

The defense's core guarantee (paper Section 2.1) is that re-issuing a query
returns a bitwise-identical answer; nondeterministic answers are themselves
a side channel. This lint rejects the constructs that historically break
that guarantee, plus the lock-discipline convention of the threading layer.

Rules (all scoped to src/ unless noted):

  asup-banned-random       rand()/srand() and std::random_device: all
                           randomness must flow through the seeded asup::Rng
                           or the keyed DeterministicCoin.
  asup-banned-time         time()/clock()/gettimeofday(): wall-clock reads
                           in library logic break replay (timing belongs in
                           util/stopwatch via <chrono>). Also bans
                           std::chrono::system_clock: it is not monotonic
                           (NTP slews/steps corrupt latency measurements),
                           so every timing path must use the steady clock
                           that util/stopwatch wraps.
  asup-unordered-iteration deterministic paths only (src/asup/suppress/,
                           src/asup/engine/): iterating a std::unordered_map
                           or std::unordered_set observes hash-table order,
                           which varies across platforms/libstdc++ versions.
                           Canonicalize (sort) or use an ordered container.
  asup-manual-lock         .lock()/.unlock() calls: RAII guards only
                           (lock_guard/unique_lock/shared_lock/scoped_lock).
  asup-locked-suffix       a function named *Locked asserts "caller holds
                           the mutex" — it must not construct a lock guard
                           itself (deadlock with a non-recursive mutex, or
                           double-think about which lock protects what).
  asup-raw-assert          validation-critical paths (src/asup/index/,
                           src/asup/suppress/, src/asup/text/,
                           src/asup/engine/, src/asup/eval/): a raw
                           assert() compiles out in Release, so the check
                           it expresses silently vanishes from production
                           decoders exactly where untrusted bytes arrive
                           (the ReadVarByte out-of-bounds bug). Use
                           ASUP_CHECK (always on where it matters) or
                           ASUP_DCHECK (explicitly debug-only) from
                           util/check.h; static_assert is fine.

Suppressing a finding requires an inline justification on the same line or
on the preceding line:

    // NOLINT(asup-unordered-iteration): order canonicalized by sort below
    // NOLINTNEXTLINE(asup-banned-time): example code, not library logic

A NOLINT for an asup-* rule without a ': reason' is itself an error.

Exit status: 0 when clean, 1 with findings, 2 on usage errors.
"""

import argparse
import re
import sys
from pathlib import Path

DETERMINISTIC_SUBDIRS = ("asup/suppress", "asup/engine")
RAW_ASSERT_SUBDIRS = (
    "asup/index",
    "asup/suppress",
    "asup/text",
    "asup/engine",
    "asup/eval",
)

# assert( not preceded by an identifier character: matches the macro call
# but not static_assert( or FooAssert(.
RAW_ASSERT_RE = re.compile(r"(?<![\w])assert\s*\(")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set)\s*<[^;{}()]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*([^)]*)\)")
LOCK_GUARD_RE = re.compile(
    r"\bstd::(?:lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
LOCKED_DEF_RE = re.compile(
    r"^\s*(?:[\w:<>,*&~\[\]]+\s+)+(?:\w+::)?(\w*Locked)\s*\(")
NOLINT_RE = re.compile(r"NOLINT(?:NEXTLINE)?\(([^)]*)\)(:?)\s*(.*)")

BANNED_PATTERNS = (
    ("asup-banned-random", re.compile(r"(?<![\w:.])s?rand\s*\("),
     "rand()/srand() is nondeterministic across platforms; use asup::Rng"),
    ("asup-banned-random", re.compile(r"\bstd::random_device\b"),
     "std::random_device defeats seeded replay; use asup::Rng / Fork()"),
    ("asup-banned-time", re.compile(r"(?<![\w:.\"])(?:std::)?time\s*\("),
     "wall-clock time() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"(?<![\w:.\"])(?:std::)?clock\s*\("),
     "clock() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"\bgettimeofday\s*\("),
     "gettimeofday() breaks deterministic replay; use util/stopwatch"),
    ("asup-banned-time", re.compile(r"\b(?:std::)?chrono::system_clock\b"),
     "system_clock is not monotonic; time with util/stopwatch "
     "(steady_clock)"),
    ("asup-manual-lock", re.compile(r"\.\s*(?:lock|unlock)\s*\(\s*\)"),
     "manual lock()/unlock(); use an RAII guard"),
)


def strip_code_noise(line):
    """Removes string/char literals and // comments so prose never matches."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                i += 2 if line[i] == "\\" else 1
            out.append(quote)
        else:
            out.append(c)
        i += 1
    return "".join(out)


class Findings:
    def __init__(self):
        self.items = []

    def add(self, path, lineno, rule, message):
        self.items.append((path, lineno, rule, message))


def nolint_rules(raw_line, lineno, path, findings):
    """Returns the set of rules suppressed by a NOLINT comment on raw_line.

    An asup-* NOLINT without a reason is reported as its own finding.
    """
    match = NOLINT_RE.search(raw_line)
    if not match:
        return frozenset()
    rules = {r.strip() for r in match.group(1).split(",")}
    asup_rules = {r for r in rules if r.startswith("asup-")}
    if asup_rules and (match.group(2) != ":" or not match.group(3).strip()):
        findings.add(path, lineno, "asup-nolint-reason",
                     "NOLINT of an asup-* rule requires ': <reason>'")
    return frozenset(rules)


def collect_unordered_names(text):
    return set(UNORDERED_DECL_RE.findall(text))


def paired_header_text(path):
    if path.suffix == ".cc":
        header = path.with_suffix(".h")
        if header.exists():
            return header.read_text(encoding="utf-8")
    return ""


def check_locked_suffix(clean_lines, suppressed, path, findings):
    """*Locked functions must not construct lock guards in their own body."""
    for idx, line in enumerate(clean_lines):
        match = LOCKED_DEF_RE.search(line.rstrip())
        if not match:
            continue
        # A definition reaches '{' before ';'; declarations and call
        # statements hit ';' first and are skipped.
        is_definition = False
        for j in range(idx, min(idx + 20, len(clean_lines))):
            brace = clean_lines[j].find("{")
            semi = clean_lines[j].find(";")
            if brace != -1 and (semi == -1 or brace < semi):
                is_definition = True
            if brace != -1 or semi != -1:
                break
        if not is_definition:
            continue
        # Walk to the opening brace, then scan the brace-balanced body.
        depth = 0
        opened = False
        for j in range(idx, min(idx + 400, len(clean_lines))):
            body_line = clean_lines[j]
            if opened and LOCK_GUARD_RE.search(body_line) and \
                    "asup-locked-suffix" not in suppressed.get(j + 1, ()):
                findings.add(
                    path, j + 1, "asup-locked-suffix",
                    f"{match.group(1)}() claims the caller holds the lock "
                    "but constructs a lock guard itself")
            depth += body_line.count("{") - body_line.count("}")
            if "{" in body_line:
                opened = True
            if opened and depth <= 0:
                break


def lint_file(path, rel, findings):
    text = path.read_text(encoding="utf-8")
    raw_lines = text.splitlines()
    clean_lines = [strip_code_noise(l) for l in raw_lines]

    suppressed = {}
    for lineno, raw in enumerate(raw_lines, 1):
        rules = nolint_rules(raw, lineno, rel, findings)
        if not rules:
            continue
        target = lineno + 1 if "NOLINTNEXTLINE" in raw else lineno
        suppressed.setdefault(target, set()).update(rules)

    def is_suppressed(lineno, rule):
        rules = suppressed.get(lineno, ())
        return rule in rules or "*" in rules

    for lineno, line in enumerate(clean_lines, 1):
        for rule, pattern, message in BANNED_PATTERNS:
            if pattern.search(line) and not is_suppressed(lineno, rule):
                findings.add(rel, lineno, rule, message)

    if any(d in rel.replace("\\", "/") for d in RAW_ASSERT_SUBDIRS):
        for lineno, line in enumerate(clean_lines, 1):
            if RAW_ASSERT_RE.search(line) and \
                    not is_suppressed(lineno, "asup-raw-assert"):
                findings.add(
                    rel, lineno, "asup-raw-assert",
                    "raw assert() compiles out in Release; use ASUP_CHECK "
                    "or ASUP_DCHECK (util/check.h)")

    deterministic = any(d in rel.replace("\\", "/")
                        for d in DETERMINISTIC_SUBDIRS)
    if deterministic:
        names = collect_unordered_names(text)
        names |= collect_unordered_names(paired_header_text(path))
        if names:
            name_re = re.compile(
                r"\b(?:" + "|".join(re.escape(n) for n in sorted(names)) +
                r")\b")
            for lineno, line in enumerate(clean_lines, 1):
                match = RANGE_FOR_RE.search(line)
                if match and name_re.search(match.group(1)) and \
                        not is_suppressed(lineno, "asup-unordered-iteration"):
                    findings.add(
                        rel, lineno, "asup-unordered-iteration",
                        "iteration over an unordered container in a "
                        "deterministic path; canonicalize the order")
        check_locked_suffix(clean_lines, suppressed, rel, findings)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
    else:
        src = root / "src"
        if not src.is_dir():
            print(f"asup_lint: no src/ under {root}", file=sys.stderr)
            return 2
        files = sorted(p for suffix in ("*.cc", "*.h")
                       for p in src.rglob(suffix))

    findings = Findings()
    for path in files:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        lint_file(path, rel, findings)

    for path, lineno, rule, message in sorted(findings.items):
        print(f"{path}:{lineno}: [{rule}] {message}")
    if findings.items:
        print(f"asup_lint: {len(findings.items)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"asup_lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
