// Figure 6: recall and precision of AS-ARBI vs. number of bona fide
// (AOL-like) queries, over the S and 2S corpora.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);
  const size_t log_size = PaperScale() ? 35000 : 8000;

  std::vector<std::vector<UtilityPoint>> series;
  series.push_back(RunUtility(small, params, Defense::kArbi, log_size));
  series.push_back(RunUtility(large, params, Defense::kArbi, log_size));
  PrintFigure("fig06: AS-ARBI recall & precision vs AOL-like queries (k=5, "
              "gamma=2)",
              UtilityCsv({"S", "2S"}, series));
  return 0;
}
