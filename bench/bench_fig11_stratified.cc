// Figure 11: STRATIFIED-EST (the state-of-the-art stratified-sampling
// estimator) with and without AS-ARBI over S and 2S — the defense is not
// specific to UNBIASED-EST.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);

  std::vector<std::vector<EstimationPoint>> trajectories;
  for (Defense defense : {Defense::kNone, Defense::kArbi}) {
    for (const Corpus* corpus : {&small, &large}) {
      EngineStack stack = MakeStack(*corpus, params, defense);
      StratifiedEstimator::Options options;
      options.seed = params.seed + 13;
      StratifiedEstimator estimator(env->pool(), AggregateQuery::Count(),
                                    FetchFrom(*corpus), options);
      trajectories.push_back(
          estimator.Run(stack.service(), params.budget, params.report_every));
    }
  }
  PrintFigure(
      "fig11: STRATIFIED-EST +- AS-ARBI, corpora S/2S (10 strata, 5 pilots)",
      TrajectoriesToCsv(
          {"S_stratified", "2S_stratified", "S_AS-ARBI", "2S_AS-ARBI"},
          trajectories));
  return 0;
}
