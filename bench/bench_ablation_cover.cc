// Ablation: AS-ARBI's cover size m and cover ratio σ (DESIGN.md §6). The
// paper reports little sensitivity to m in 1..10; this bench measures, for
// each (m, σ), the fraction of correlated-attack queries answered
// virtually and the attack's tail count ratio (1.0 = fully suppressed
// decay).

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  SyntheticCorpusConfig config;
  config.vocabulary_size = 10000;
  config.num_topics = 96;
  config.words_per_topic = 300;
  config.seed = 99;
  SyntheticCorpusGenerator generator(config);
  const Corpus corpus = generator.Generate(1050);
  const Corpus external = generator.Generate(2500);
  const InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 50);

  CorrelatedQueryAttack::Options attack_options;
  attack_options.num_queries = 94;
  attack_options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack(external, "sports", attack_options);

  AsSimpleConfig simple_config;
  simple_config.gamma = 2.0;

  CsvTable table({"m", "sigma", "virtual_fraction", "tail_count_ratio"});
  for (size_t m : {1, 2, 5, 10}) {
    for (double sigma : {0.8, 1.0}) {
      AsArbiConfig arbi_config;
      arbi_config.simple = simple_config;
      arbi_config.cover_size = m;
      arbi_config.cover_ratio = sigma;
      AsArbiEngine defended(engine, arbi_config);
      const auto counts = attack.Run(defended);

      double tail_sum = 0.0;
      size_t tail_n = 0;
      for (size_t i = counts.size() / 2; i < counts.size(); ++i) {
        AsSimpleEngine fresh(engine, simple_config);
        const double fresh_count = static_cast<double>(
            fresh.Search(attack.queries()[i]).docs.size());
        if (fresh_count == 0) continue;
        tail_sum += static_cast<double>(counts[i]) / fresh_count;
        ++tail_n;
      }
      const double virtual_fraction =
          static_cast<double>(defended.stats().virtual_answers) /
          static_cast<double>(defended.stats().queries_processed);
      table.AddRow({static_cast<double>(m), sigma, virtual_fraction,
                    tail_n == 0 ? 0.0 : tail_sum / static_cast<double>(tail_n)});
    }
  }
  PrintFigure("ablation: AS-ARBI cover size m and cover ratio sigma", table);
  return 0;
}
