// Ablation: dummy-document insertion (the alternative the paper rejects,
// Sections 1 and 8) vs AS-ARBI. Both push the adversary's COUNT(*)
// estimate to the segment top, but the dummies poison every answer —
// precision collapses to roughly n/γ^{i+1} — while AS-ARBI's precision
// stays near 1.

#include "asup/suppress/dummy_insertion.h"
#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();

  // Build the corpus and its padded twin from one generator so dummies are
  // statistically indistinguishable from real documents.
  SyntheticCorpusConfig config;
  config.vocabulary_size = params.vocabulary;
  config.seed = params.seed;
  SyntheticCorpusGenerator generator(config);
  const Corpus corpus = generator.Generate(params.corpus_sizes.front());
  const Corpus held_out = generator.Generate(params.held_out);
  const QueryPool pool(held_out);
  const auto padded = PadCorpusWithDummies(corpus, generator, params.gamma);

  const double truth = static_cast<double>(corpus.size());
  std::printf("# corpus %zu docs padded to %zu (%zu dummies)\n", corpus.size(),
              padded.corpus.size(), padded.dummy_ids.size());

  // Suppression: UNBIASED-EST estimates against each engine.
  auto estimate = [&](SearchService& service, const Corpus& fetch_corpus) {
    UnbiasedEstimator::Options options;
    options.seed = params.seed + 7;
    UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                                FetchFrom(fetch_corpus), options);
    return estimator.Run(service, params.budget, params.budget)
        .back()
        .estimate;
  };

  // Utility: replay an AOL-like log; for the padded engine, precision is
  // measured against the *real* corpus (a dummy in the answer is a false
  // positive by definition).
  const size_t log_size = PaperScale() ? 20000 : 4000;
  AolLikeConfig log_config;
  log_config.log_size = log_size;
  log_config.unique_queries = log_size / 3;
  const AolLikeWorkload workload(corpus, log_config);

  CsvTable table({"defense", "estimate_over_truth", "recall", "precision"});

  {  // Row 0: dummy insertion.
    InvertedIndex padded_index(padded.corpus);
    PlainSearchEngine padded_engine(padded_index, params.k);
    EngineStack reference = EngineStack::Plain(corpus, params.k);
    UtilityMeter meter;
    for (const auto& query : workload.log()) {
      // A dummy in the answer is a false positive against the real
      // corpus's reference answer; a real doc pushed out by a dummy is a
      // false negative. UtilityMeter captures both.
      meter.Observe(reference.service().Search(query),
                    padded_engine.Search(query));
    }
    table.AddRow({0, estimate(padded_engine, padded.corpus) / truth,
                  meter.recall(), meter.precision()});
  }

  {  // Row 1: AS-ARBI on the real corpus.
    EngineStack defended = MakeStack(corpus, params, Defense::kArbi);
    const double est = estimate(defended.service(), corpus);
    EngineStack reference = EngineStack::Plain(corpus, params.k);
    EngineStack defended2 = MakeStack(corpus, params, Defense::kArbi);
    const auto utility = MeasureUtility(reference.service(),
                                        defended2.service(), workload.log(),
                                        log_size);
    table.AddRow({1, est / truth, utility.back().recall,
                  utility.back().precision});
  }

  std::printf("# row 0 = dummy insertion, row 1 = AS-ARBI\n");
  PrintFigure("ablation: dummy-document insertion vs AS-ARBI", table);
  return 0;
}
