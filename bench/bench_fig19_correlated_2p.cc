// Figure 19: the correlated-query attack against corpus 2P. Here the
// correlated queries overflow the top-k interface, so hidden documents are
// replaced by lower-ranked matches and neither defense shows the decay —
// the adversary distinguishes P from 2P only when AS-SIMPLE is used on P.

#include "bench_common.h"

int main() {
  asup::bench::RunCorrelatedFigure(
      2100, "fig19: correlated-query attack, corpus 2P (2100 docs, k=50)");
  return 0;
}
