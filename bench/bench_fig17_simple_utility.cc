// Figure 17: recall and precision of the basic AS-SIMPLE defense over S
// and 2S — visibly below AS-ARBI's utility (Figure 6), demonstrating the
// benefit of virtual query processing.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);
  const size_t log_size = PaperScale() ? 35000 : 8000;

  std::vector<std::vector<UtilityPoint>> series;
  series.push_back(RunUtility(small, params, Defense::kSimple, log_size));
  series.push_back(RunUtility(large, params, Defense::kSimple, log_size));
  PrintFigure("fig17: AS-SIMPLE recall & precision vs AOL-like queries",
              UtilityCsv({"S", "2S"}, series));
  return 0;
}
