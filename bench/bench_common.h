#ifndef ASUP_BENCH_BENCH_COMMON_H_
#define ASUP_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "asup/attack/correlated.h"
#include "asup/attack/stratified_est.h"
#include "asup/attack/unbiased_est.h"
#include "asup/eval/experiment.h"
#include "asup/eval/utility.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/util/csv.h"
#include "asup/workload/aol_like.h"

namespace asup {
namespace bench {

/// Parameters of one suppression experiment family. All corpus sizes are
/// chosen *inside a single indistinguishable segment* [γ^i, γ^{i+1}): under
/// Algorithm 1's fixed segment partition, an exact factor-γ pair necessarily
/// straddles a segment boundary, so (as in the paper's own experiments,
/// whose recallable corpus sizes have ratio 1.51 rather than 2.0) the
/// "2S/5T/10T" corpora are the largest same-segment sizes. See DESIGN.md.
struct FamilyParams {
  size_t universe;
  size_t held_out;
  std::vector<size_t> corpus_sizes;
  std::vector<std::string> corpus_names;
  double gamma;
  size_t k;
  uint64_t budget;
  uint64_t report_every;
  uint64_t seed = 2012;
  /// Vocabulary size of the synthetic universe. The k = 50 experiments use
  /// a larger vocabulary: a larger k needs an even rarer-word-dominated
  /// pool for the adversary's probes, mirroring real web text.
  size_t vocabulary = 100000;
  /// Pool stop-word threshold (QueryPool::Options::max_df_fraction).
  double pool_max_df_fraction = 1.0;
};

/// γ = 2, k = 5 family (Figures 4, 5, 6, 7, 11, 14, 15, 16, 17): the
/// segment is [16384, 32768) at default scale and [65536, 131072) at paper
/// scale.
inline FamilyParams Gamma2Family() {
  FamilyParams p;
  if (PaperScale()) {
    p.universe = 140000;
    p.held_out = 20000;
    p.corpus_sizes = {68000, 90440, 113560, 130000};
    p.budget = 40000;
    p.report_every = 2000;
  } else {
    p.universe = 36000;
    p.held_out = 6000;
    p.corpus_sizes = {17000, 22610, 28390, 32500};
    p.budget = 3000;
    p.report_every = 300;
  }
  p.corpus_names = {"S", "1.33S", "1.67S", "2S"};
  p.gamma = 2.0;
  p.k = 5;
  return p;
}

/// γ = 5 family (Figure 8): segment [15625, 78125) at default scale.
inline FamilyParams Gamma5Family() {
  FamilyParams p;
  if (PaperScale()) {
    p.universe = 400000;
    p.held_out = 30000;
    p.corpus_sizes = {80000, 385000};
    p.budget = 40000;
    p.report_every = 2000;
  } else {
    p.universe = 85000;
    p.held_out = 9000;
    p.corpus_sizes = {16000, 77000};
    // γ·k = 25 documents are activated per query, so the suppression
    // transient is shorter than in the γ = 2 family; stop before deep
    // saturation.
    p.budget = 2000;
    p.report_every = 200;
  }
  p.corpus_names = {"T", "5T"};
  p.gamma = 5.0;
  p.k = 5;
  return p;
}

/// γ = 10 family (Figures 9, 10): segment [10^4, 10^5). The paper's own
/// sizes (10,000 and 100,000) are used almost verbatim.
inline FamilyParams Gamma10Family() {
  FamilyParams p;
  p.universe = 110000;
  p.held_out = 10000;
  p.corpus_sizes = {11000, 99000};
  p.budget = PaperScale() ? 40000 : 3000;
  p.report_every = PaperScale() ? 2000 : 300;
  p.corpus_names = {"T", "10T"};
  p.gamma = 10.0;
  p.k = 5;
  if (!PaperScale()) {
    // γ·k = 50 activations per query: an even shorter transient.
    p.budget = 1500;
    p.report_every = 150;
  }
  return p;
}

/// Builds the family's shared environment (universe + held-out external
/// sample + adversarial pool).
inline std::unique_ptr<ExperimentEnv> MakeEnv(const FamilyParams& p) {
  ExperimentEnv::Options options;
  options.universe_size = p.universe;
  options.held_out_size = p.held_out;
  options.seed = p.seed;
  options.corpus_config.vocabulary_size = p.vocabulary;
  options.pool_max_df_fraction = p.pool_max_df_fraction;
  return std::make_unique<ExperimentEnv>(options);
}

/// k = 50 family (Figures 12, 13). k = 50 dynamics need larger corpora
/// than the γ = 2 family: every query can disclose (and thereby activate)
/// up to γ·k = 100 documents, so the suppression transient — where the
/// protection lives — is proportionally shorter.
inline FamilyParams K50Family() {
  FamilyParams p = Gamma2Family();
  p.k = 50;
  p.vocabulary = 300000;
  // Drop common words from the pool: with k = 50 the probe queries would
  // otherwise touch (and thereby activate) so many documents per query
  // that the suppression transient collapses; real attack pools exclude
  // stop words for the same d_max reason.
  p.pool_max_df_fraction = 0.001;
  if (PaperScale()) {
    p.universe = 140000;
    p.held_out = 20000;
    p.corpus_sizes = {68000, 90440, 113560, 130000};
    p.budget = 6000;
    p.report_every = 600;
  } else {
    p.universe = 70000;
    p.held_out = 10000;
    p.corpus_sizes = {34000, 45220, 56780, 65000};
    p.budget = 4000;
    p.report_every = 400;
  }
  return p;
}

/// Samples the family's corpora from the environment's universe.
inline std::vector<Corpus> MakeCorpora(const ExperimentEnv& env,
                                       const FamilyParams& p) {
  std::vector<Corpus> corpora;
  for (size_t i = 0; i < p.corpus_sizes.size(); ++i) {
    corpora.push_back(env.SampleCorpus(p.corpus_sizes[i], i + 1));
  }
  return corpora;
}

enum class Defense { kNone, kSimple, kArbi };

inline const char* DefenseName(Defense defense) {
  switch (defense) {
    case Defense::kNone:
      return "plain";
    case Defense::kSimple:
      return "AS-SIMPLE";
    case Defense::kArbi:
      return "AS-ARBI";
  }
  return "?";
}

inline EngineStack MakeStack(const Corpus& corpus, const FamilyParams& p,
                             Defense defense) {
  switch (defense) {
    case Defense::kSimple: {
      AsSimpleConfig config;
      config.gamma = p.gamma;
      return EngineStack::WithSimple(corpus, p.k, config);
    }
    case Defense::kArbi: {
      AsArbiConfig config;
      config.simple.gamma = p.gamma;
      return EngineStack::WithArbi(corpus, p.k, config);
    }
    case Defense::kNone:
      break;
  }
  return EngineStack::Plain(corpus, p.k);
}

/// Pointwise average of equal-cadence trajectories (truncated to the
/// shortest). Single UNBIASED-EST runs have heavy-tailed noise; figures
/// over high-variance configurations average a few attack replicates, each
/// with fresh attack randomness *and* fresh defense state.
inline std::vector<EstimationPoint> AverageTrajectories(
    const std::vector<std::vector<EstimationPoint>>& replicates) {
  std::vector<EstimationPoint> average;
  if (replicates.empty()) return average;
  size_t rows = SIZE_MAX;
  for (const auto& r : replicates) rows = std::min(rows, r.size());
  for (size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (const auto& r : replicates) sum += r[i].estimate;
    average.push_back({replicates[0][i].queries_issued,
                       sum / static_cast<double>(replicates.size())});
  }
  return average;
}

/// Runs UNBIASED-EST against every corpus under `defense` and returns the
/// estimate trajectories (averaged over `replicates` independent attacks).
inline std::vector<std::vector<EstimationPoint>> RunUnbiasedSweep(
    const ExperimentEnv& env, const std::vector<Corpus>& corpora,
    const FamilyParams& p, Defense defense,
    const AggregateQuery& aggregate = AggregateQuery::Count(),
    size_t replicates = 1) {
  std::vector<std::vector<EstimationPoint>> trajectories;
  for (const Corpus& corpus : corpora) {
    std::vector<std::vector<EstimationPoint>> runs;
    for (size_t rep = 0; rep < replicates; ++rep) {
      EngineStack stack = MakeStack(corpus, p, defense);
      UnbiasedEstimator::Options options;
      options.seed = p.seed + 7 + rep * 101;
      UnbiasedEstimator estimator(env.pool(), aggregate, FetchFrom(corpus),
                                  options);
      runs.push_back(
          estimator.Run(stack.service(), p.budget, p.report_every));
    }
    trajectories.push_back(AverageTrajectories(runs));
  }
  return trajectories;
}

/// Utility trajectory of a defense on one corpus against an AOL-like log.
inline std::vector<UtilityPoint> RunUtility(const Corpus& corpus,
                                            const FamilyParams& p,
                                            Defense defense,
                                            size_t log_size) {
  AolLikeConfig log_config;
  log_config.log_size = log_size;
  log_config.unique_queries = log_size / 3;
  AolLikeWorkload workload(corpus, log_config);
  EngineStack reference = EngineStack::Plain(corpus, p.k);
  EngineStack defended = MakeStack(corpus, p, defense);
  return MeasureUtility(reference.service(), defended.service(),
                        workload.log(), std::max<size_t>(log_size / 10, 1));
}

/// Converts utility trajectories into a CSV with interleaved
/// recall/precision (and optionally rank-distance) columns.
inline CsvTable UtilityCsv(
    const std::vector<std::string>& names,
    const std::vector<std::vector<UtilityPoint>>& series,
    bool include_rank_distance = false) {
  std::vector<std::string> columns{"queries"};
  for (const auto& name : names) {
    columns.push_back("recall_" + name);
    columns.push_back("precision_" + name);
    if (include_rank_distance) columns.push_back("rankdist_" + name);
  }
  CsvTable table(std::move(columns));
  size_t rows = SIZE_MAX;
  for (const auto& s : series) rows = std::min(rows, s.size());
  for (size_t r = 0; r < rows; ++r) {
    std::vector<double> row{static_cast<double>(series[0][r].queries)};
    for (const auto& s : series) {
      row.push_back(s[r].recall);
      row.push_back(s[r].precision);
      if (include_rank_distance) row.push_back(s[r].rank_distance);
    }
    table.AddRow(row);
  }
  return table;
}

/// Shared driver of the correlated-query-attack figures (18 and 19). Runs
/// the Section 5.1 attack against AS-SIMPLE and AS-ARBI over a corpus of
/// `corpus_size` topical documents, printing each query's *count ratio* —
/// the answer size divided by what a fresh (empty-state) defended engine
/// would return. A declining ratio is the attack's signal.
///
/// The topical generator configuration makes the seed word's document
/// frequency comparable to k, the regime of the paper's P/2P experiment:
/// on P the correlated queries are valid (hiding is visible and the ratio
/// decays), on 2P they overflow (hidden documents are replaced from the
/// surplus and the ratio stays flat).
inline void RunCorrelatedFigure(size_t corpus_size, const char* title) {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 10000;
  config.num_topics = 96;
  config.words_per_topic = 300;
  config.seed = 99;
  SyntheticCorpusGenerator generator(config);
  const Corpus corpus = generator.Generate(corpus_size);
  const Corpus external = generator.Generate(2500);
  const InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 50);

  CorrelatedQueryAttack::Options attack_options;
  attack_options.num_queries = 94;
  attack_options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack(external, "sports", attack_options);

  AsSimpleConfig simple_config;
  simple_config.gamma = 2.0;
  AsSimpleEngine simple(engine, simple_config);
  AsArbiConfig arbi_config;
  arbi_config.simple = simple_config;
  AsArbiEngine arbi(engine, arbi_config);

  const auto counts_simple = attack.Run(simple);
  const auto counts_arbi = attack.Run(arbi);

  CsvTable table({"query", "count_ratio_AS-SIMPLE", "count_ratio_AS-ARBI"});
  for (size_t i = 0; i < attack.queries().size(); ++i) {
    AsSimpleEngine fresh(engine, simple_config);
    const double fresh_count = static_cast<double>(
        fresh.Search(attack.queries()[i]).docs.size());
    if (fresh_count == 0) continue;
    table.AddRow({static_cast<double>(i + 1),
                  static_cast<double>(counts_simple[i]) / fresh_count,
                  static_cast<double>(counts_arbi[i]) / fresh_count});
  }
  PrintFigure(title, table);
}

}  // namespace bench
}  // namespace asup

#endif  // ASUP_BENCH_BENCH_COMMON_H_
