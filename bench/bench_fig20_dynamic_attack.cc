// Figure 20: the dynamic-corpus attack loop the paper leaves open. A
// 10-epoch churn stream is replayed against the same workload under no
// defense, AS-SIMPLE, and AS-ARBI; the RS-ESTIMATOR-style dynamic
// estimator and the correlation adversary ride every run. Three tables:
//
//   fig20a — per-epoch estimates/relative errors at steady state (the
//            census regime, where re-measured return degrees let the
//            persistent estimator see through answer reshaping);
//   fig20b — run summaries: error aggregates, n-delta sign leakage, and
//            the correlation adversary's advantage (AS-ARBI's surviving
//            win: advantage ~ 0, virtual answers are indistinguishable);
//   fig20c — the transient regime at privacy-game scale, where AS-SIMPLE
//            inflates first-epoch estimates toward the segment top, the
//            SIMPLE-ADV margin of the paper's Section 4.

#include "bench_common.h"

#include "asup/eval/dynamic_attack_experiment.h"

int main() {
  using namespace asup;

  DynamicAttackConfig config;
  config.stream.kind = EpochStreamKind::kChurn;
  config.stream.num_epochs = 9;

  std::vector<DynamicAttackReport> steady;
  for (DefenseKind defense :
       {DefenseKind::kNone, DefenseKind::kSimple, DefenseKind::kArbi}) {
    steady.push_back(RunDynamicAttack(config, defense));
  }
  PrintFigure("fig20a: dynamic estimator per epoch, 10-epoch churn",
              DynamicAttackEpochsCsv(steady));
  PrintFigure("fig20b: run summaries (error, sign leakage, advantage)",
              DynamicAttackSummaryCsv(steady));

  // Transient regime: budget small against the corpus, Θ_R far from
  // saturation — the same scale as eval_privacy_game_test.
  DynamicAttackConfig transient;
  transient.corpus_config.vocabulary_size = 10000;
  transient.corpus_config.num_topics = 96;
  transient.corpus_config.words_per_topic = 300;
  transient.initial_corpus_size = 17000;
  transient.held_out_size = 3000;
  transient.pool_max_df_fraction = 1.0;
  transient.per_epoch_budget = 3000;
  transient.estimator.maintained_pool_size = 400;
  transient.stream.kind = EpochStreamKind::kChurn;
  transient.stream.num_epochs = 1;
  transient.stream.docs_per_epoch = 500;

  std::vector<DynamicAttackReport> runs;
  for (DefenseKind defense : {DefenseKind::kNone, DefenseKind::kSimple}) {
    runs.push_back(RunDynamicAttack(transient, defense));
  }
  PrintFigure("fig20c: transient-regime inflation under AS-SIMPLE",
              DynamicAttackEpochsCsv(runs));
  return 0;
}
