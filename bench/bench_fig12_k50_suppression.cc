// Figure 12: UNBIASED-EST with and without AS-ARBI under a larger result
// limit, k = 50, over S and 2S.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = K50Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);

  // k = 50 runs have few first-round samples per query budget (each
  // first-round query costs ~k probe queries), so average three attack
  // replicates to tame the heavy-tailed estimator noise.
  std::vector<std::vector<EstimationPoint>> trajectories;
  for (Defense defense : {Defense::kNone, Defense::kArbi}) {
    for (const Corpus* corpus : {&small, &large}) {
      std::vector<std::vector<EstimationPoint>> runs;
      for (size_t rep = 0; rep < 3; ++rep) {
        EngineStack stack = MakeStack(*corpus, params, defense);
        UnbiasedEstimator::Options options;
        options.seed = params.seed + 7 + rep * 101;
        UnbiasedEstimator estimator(env->pool(), AggregateQuery::Count(),
                                    FetchFrom(*corpus), options);
        runs.push_back(estimator.Run(stack.service(), params.budget,
                                     params.report_every));
      }
      trajectories.push_back(AverageTrajectories(runs));
    }
  }
  PrintFigure("fig12: UNBIASED-EST +- AS-ARBI with k=50, corpora S/2S",
              TrajectoriesToCsv(
                  {"S_unbiased", "2S_unbiased", "S_AS-ARBI", "2S_AS-ARBI"},
                  trajectories));
  return 0;
}
