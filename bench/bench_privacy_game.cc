// (ε, δ, c, p)-privacy-game harness (Definition 1 / Theorem 4.1): plays
// the Monte-Carlo game with UNBIASED-EST as the adversary against the
// undefended, AS-SIMPLE- and AS-ARBI-defended engines, sweeping the
// interval width ε. Suppression holds when the defended win rate stays at
// or below the undefended one by a wide margin (Theorem 4.1's p = 50%).

#include "asup/eval/privacy_game.h"

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  ExperimentEnv::Options env_options;
  env_options.universe_size = params.corpus_sizes.front();
  env_options.held_out_size = params.held_out;
  env_options.seed = params.seed;
  const ExperimentEnv env(env_options);
  const Corpus& corpus = env.universe();
  const double truth = static_cast<double>(corpus.size());
  const InvertedIndex index(corpus);
  PlainSearchEngine plain(index, params.k);

  CsvTable table({"epsilon_fraction", "win_plain", "win_AS-SIMPLE",
                  "win_AS-ARBI", "mean_est_plain", "mean_est_AS-SIMPLE",
                  "mean_est_AS-ARBI"});
  for (double fraction : {0.25, 0.5, 0.75}) {
    PrivacyGameConfig config;
    config.epsilon = fraction * truth;
    config.query_budget = PaperScale() ? 10000 : 3000;
    config.trials = PaperScale() ? 10 : 6;

    std::vector<double> wins;
    std::vector<double> means;
    const ServiceFactory factories[] = {
        [&]() -> std::unique_ptr<SearchService> {
          return std::make_unique<PlainSearchEngine>(index, params.k);
        },
        [&]() -> std::unique_ptr<SearchService> {
          AsSimpleConfig simple_config;
          simple_config.gamma = params.gamma;
          return std::make_unique<AsSimpleEngine>(plain, simple_config);
        },
        [&]() -> std::unique_ptr<SearchService> {
          AsArbiConfig arbi_config;
          arbi_config.simple.gamma = params.gamma;
          return std::make_unique<AsArbiEngine>(plain, arbi_config);
        },
    };
    for (const auto& factory : factories) {
      const PrivacyGameResult result =
          PlayPrivacyGame(factory, env.pool(), AggregateQuery::Count(),
                          FetchFrom(corpus), truth, config);
      wins.push_back(result.win_rate);
      means.push_back(result.estimates.Mean());
    }
    table.AddRow({fraction, wins[0], wins[1], wins[2], means[0], means[1],
                  means[2]});
  }
  PrintFigure("privacy game: (eps, delta, c)-win rates, truth = " +
                  std::to_string(static_cast<long long>(truth)),
              table);
  return 0;
}
