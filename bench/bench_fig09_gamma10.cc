// Figure 9: UNBIASED-EST with and without AS-ARBI at obfuscation factor
// γ = 10, over corpora T and 10T (same indistinguishable segment; the
// paper's own 10,000/100,000 sizes nearly verbatim).

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma10Family();
  const auto env = MakeEnv(params);
  const std::vector<Corpus> corpora = MakeCorpora(*env, params);

  auto plain = RunUnbiasedSweep(*env, corpora, params, Defense::kNone,
                               AggregateQuery::Count(), /*replicates=*/3);
  auto arbi = RunUnbiasedSweep(*env, corpora, params, Defense::kArbi,
                              AggregateQuery::Count(), /*replicates=*/3);
  plain.insert(plain.end(), arbi.begin(), arbi.end());
  PrintFigure("fig09: UNBIASED-EST +- AS-ARBI, gamma=10, corpora T/10T",
              TrajectoriesToCsv({"T_unbiased", "10T_unbiased", "T_AS-ARBI",
                                 "10T_AS-ARBI"},
                                plain));
  return 0;
}
