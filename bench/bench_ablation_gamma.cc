// Ablation: the suppression/utility trade-off of the obfuscation factor γ
// (DESIGN.md §6). For each γ, reports the defended estimate's inflation
// over the truth, the measured recall/precision on an AOL-like workload,
// and Theorem 4.2's lower bounds for comparison.

#include "asup/workload/query_log.h"
#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus corpus = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const double truth = static_cast<double>(corpus.size());

  const size_t log_size = PaperScale() ? 20000 : 4000;
  AolLikeConfig log_config;
  log_config.log_size = log_size;
  log_config.unique_queries = log_size / 3;
  const AolLikeWorkload workload(corpus, log_config);

  CsvTable table({"gamma", "estimate_inflation", "recall", "precision",
                  "recall_bound", "precision_bound"});
  for (double gamma : {1.5, 2.0, 3.0, 5.0}) {
    params.gamma = gamma;

    EngineStack defended = MakeStack(corpus, params, Defense::kArbi);
    UnbiasedEstimator::Options options;
    options.seed = params.seed + 7;
    UnbiasedEstimator estimator(env->pool(), AggregateQuery::Count(),
                                FetchFrom(corpus), options);
    const double estimate =
        estimator.Run(defended.service(), params.budget, params.budget)
            .back()
            .estimate;

    EngineStack reference = EngineStack::Plain(corpus, params.k);
    EngineStack defended2 = MakeStack(corpus, params, Defense::kArbi);
    const auto utility = MeasureUtility(reference.service(),
                                        defended2.service(), workload.log(),
                                        log_size);
    const WorkloadProfile profile =
        ProfileWorkload(reference.plain(), workload.log(), gamma);

    table.AddRow({gamma, estimate / truth, utility.back().recall,
                  utility.back().precision, profile.RecallLowerBound(gamma),
                  profile.PrecisionLowerBound(gamma)});
  }
  PrintFigure("ablation: gamma sweep on corpus of " +
                  std::to_string(corpus.size()) + " docs",
              table);
  return 0;
}
