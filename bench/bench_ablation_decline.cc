// Ablation: the decline-based strawman of Section 5.2 vs AS-ARBI's virtual
// query processing. Both block the correlated-query attack, but declining
// zeroes the recall of every covered query, while AS-ARBI answers it from
// history — the reason the paper adopts virtual processing.

#include "asup/suppress/as_decline.h"
#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  SyntheticCorpusConfig config;
  config.vocabulary_size = 10000;
  config.num_topics = 96;
  config.words_per_topic = 300;
  config.seed = 99;
  SyntheticCorpusGenerator generator(config);
  const Corpus corpus = generator.Generate(1050);
  const Corpus external = generator.Generate(2500);
  const InvertedIndex index(corpus);
  PlainSearchEngine engine(index, 50);

  CorrelatedQueryAttack::Options attack_options;
  attack_options.num_queries = 94;
  attack_options.min_cooccurrence = 3;
  const CorrelatedQueryAttack attack(external, "sports", attack_options);

  AsSimpleConfig simple_config;
  simple_config.gamma = 2.0;

  // Run the attack against both defenses and compare (a) per-query recall
  // vs the undefended answer, (b) the attack's tail count ratio.
  AsDeclineConfig decline_config;
  decline_config.simple = simple_config;
  AsDeclineEngine decline(engine, decline_config);
  AsArbiConfig arbi_config;
  arbi_config.simple = simple_config;
  AsArbiEngine arbi(engine, arbi_config);

  UtilityMeter decline_utility;
  UtilityMeter arbi_utility;
  double decline_tail = 0.0;
  double arbi_tail = 0.0;
  size_t tail_n = 0;
  const auto& queries = attack.queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    const SearchResult plain = engine.Search(queries[i]);
    const SearchResult declined = decline.Search(queries[i]);
    const SearchResult virtual_answer = arbi.Search(queries[i]);
    decline_utility.Observe(plain, declined);
    arbi_utility.Observe(plain, virtual_answer);
    if (i >= queries.size() / 2) {
      AsSimpleEngine fresh(engine, simple_config);
      const double fresh_count =
          static_cast<double>(fresh.Search(queries[i]).docs.size());
      if (fresh_count > 0) {
        decline_tail += static_cast<double>(declined.docs.size()) / fresh_count;
        arbi_tail +=
            static_cast<double>(virtual_answer.docs.size()) / fresh_count;
        ++tail_n;
      }
    }
  }

  CsvTable table({"defense", "recall", "precision", "tail_count_ratio",
                  "refusals_or_virtuals"});
  table.AddRow({0, decline_utility.recall(), decline_utility.precision(),
                decline_tail / static_cast<double>(tail_n),
                static_cast<double>(decline.stats().declined)});
  table.AddRow({1, arbi_utility.recall(), arbi_utility.precision(),
                arbi_tail / static_cast<double>(tail_n),
                static_cast<double>(arbi.stats().virtual_answers)});
  std::printf("# row 0 = AS-DECLINE (Section 5.2 strawman), row 1 = AS-ARBI\n");
  PrintFigure("ablation: declining vs virtual query processing", table);
  return 0;
}
