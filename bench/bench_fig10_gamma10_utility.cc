// Figure 10: recall and precision of AS-ARBI at γ = 10 over T and 10T —
// the utility cost of the more stringent obfuscation factor.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma10Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 2);
  const size_t log_size = PaperScale() ? 35000 : 6000;

  std::vector<std::vector<UtilityPoint>> series;
  series.push_back(RunUtility(small, params, Defense::kArbi, log_size));
  series.push_back(RunUtility(large, params, Defense::kArbi, log_size));
  PrintFigure("fig10: AS-ARBI recall & precision, gamma=10, corpora T/10T",
              UtilityCsv({"T", "10T"}, series));
  return 0;
}
