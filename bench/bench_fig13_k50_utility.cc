// Figure 13: recall and precision of AS-ARBI with k = 50 over S and 2S.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = K50Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);
  const size_t log_size = PaperScale() ? 35000 : 6000;

  std::vector<std::vector<UtilityPoint>> series;
  series.push_back(RunUtility(small, params, Defense::kArbi, log_size));
  series.push_back(RunUtility(large, params, Defense::kArbi, log_size));
  PrintFigure("fig13: AS-ARBI recall & precision with k=50, corpora S/2S",
              UtilityCsv({"S", "2S"}, series));
  return 0;
}
