// Figure 15: AS-ARBI's query-processing overhead — the ratio of the
// defended engine's cumulative response time to the undefended engine's,
// as the number of processed queries grows. The paper reports a small,
// flat ratio (the trigger evaluation is skipped for broad queries and the
// per-document signatures make it cheap otherwise).
//
// Also prints an ablation: the same ratio with the deterministic answer
// cache disabled.

#include "bench_common.h"

namespace {

using namespace asup;
using namespace asup::bench;

std::vector<double> RatioSeries(const Corpus& corpus,
                                const std::vector<KeywordQuery>& log,
                                size_t k, bool cache,
                                const std::vector<uint64_t>& checkpoints) {
  EngineStack plain_stack = EngineStack::Plain(corpus, k);
  AsArbiConfig config;
  config.cache_answers = cache;
  config.simple.cache_answers = cache;
  EngineStack defended_stack = EngineStack::WithArbi(corpus, k, config);

  TimingService plain_timer(plain_stack.service());
  TimingService defended_timer(defended_stack.service());

  std::vector<double> ratios;
  size_t next = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    plain_timer.Search(log[i]);
    defended_timer.Search(log[i]);
    if (next < checkpoints.size() && i + 1 == checkpoints[next]) {
      ratios.push_back(defended_timer.MeanNanos() /
                       std::max(plain_timer.MeanNanos(), 1.0));
      ++next;
    }
  }
  return ratios;
}

}  // namespace

int main() {
  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus corpus = env->SampleCorpus(params.corpus_sizes.back(), 4);

  const size_t log_size = PaperScale() ? 35000 : 8000;
  AolLikeConfig log_config;
  log_config.log_size = log_size;
  log_config.unique_queries = log_size / 3;
  const AolLikeWorkload workload(corpus, log_config);

  std::vector<uint64_t> checkpoints;
  for (uint64_t c = log_size / 10; c <= log_size; c += log_size / 10) {
    checkpoints.push_back(c);
  }

  const auto with_cache =
      RatioSeries(corpus, workload.log(), params.k, true, checkpoints);
  const auto without_cache =
      RatioSeries(corpus, workload.log(), params.k, false, checkpoints);

  CsvTable table({"queries", "time_ratio", "time_ratio_no_cache"});
  for (size_t i = 0;
       i < std::min({checkpoints.size(), with_cache.size(),
                     without_cache.size()});
       ++i) {
    table.AddRow({static_cast<double>(checkpoints[i]), with_cache[i],
                  without_cache[i]});
  }
  PrintFigure("fig15: AS-ARBI response-time ratio vs number of queries",
              table);
  return 0;
}
