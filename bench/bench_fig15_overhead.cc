// Figure 15: AS-ARBI's query-processing overhead — the ratio of the
// defended engine's cumulative response time to the undefended engine's,
// as the number of processed queries grows. The paper reports a small,
// flat ratio (the trigger evaluation is skipped for broad queries and the
// per-document signatures make it cheap otherwise).
//
// Also prints an ablation: the same ratio with the deterministic answer
// cache disabled, and a parallel-mode table: batch throughput of the
// plain and defended engines at 1/2/4/8 workers (free-running concurrent
// mode and the deterministic prefetch+serial-commit mode).
//
// With metrics compiled in, the defended runs execute under a query trace
// and the bench additionally prints fig15c — per-stage latency percentiles
// (match/hide/trim/cover/...) from RunReport — and accepts
//   --trace-out=FILE    dump the most recent query traces as JSONL
//   --report-out=FILE   dump the RunReport JSON summary (BENCH sidecar)

#include <fstream>
#include <functional>
#include <span>
#include <string>

#include "asup/engine/doc_iterator.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/query_node.h"
#include "asup/engine/sharded_service.h"
#include "asup/index/block_codec.h"
#include "asup/index/corpus_manager.h"
#include "asup/index/sharded_index.h"
#include "asup/text/corpus_delta.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/obs/run_report.h"
#include "asup/obs/trace.h"
#include "asup/util/stopwatch.h"
#include "asup/util/thread_pool.h"
#include "bench_common.h"

namespace {

using namespace asup;
using namespace asup::bench;

std::vector<double> RatioSeries(const Corpus& corpus,
                                const std::vector<KeywordQuery>& log,
                                size_t k, bool cache,
                                const std::vector<uint64_t>& checkpoints) {
  EngineStack plain_stack = EngineStack::Plain(corpus, k);
  AsArbiConfig config;
  config.cache_answers = cache;
  config.simple.cache_answers = cache;
  EngineStack defended_stack = EngineStack::WithArbi(corpus, k, config);

  TimingService plain_timer(plain_stack.service());
  TimingService defended_timer(defended_stack.service());

  std::vector<double> ratios;
  size_t next = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    plain_timer.Search(log[i]);
    {
      // Trace the defended pipeline only; inert when no sink is installed.
      ASUP_METRICS_ONLY(const obs::ScopedQueryTrace traced(
          log[i].canonical());)
      defended_timer.Search(log[i]);
    }
    if (next < checkpoints.size() && i + 1 == checkpoints[next]) {
      ratios.push_back(defended_timer.MeanNanos() /
                       std::max(plain_timer.MeanNanos(), 1.0));
      ++next;
    }
  }
  return ratios;
}

double MeasureQps(const std::function<void()>& run, size_t queries) {
  Stopwatch watch;
  run();
  const double seconds =
      static_cast<double>(watch.ElapsedNanos()) / 1e9;
  return static_cast<double>(queries) / std::max(seconds, 1e-9);
}

/// Batch throughput (queries/s) of the plain engine (concurrent mode) and
/// of AS-ARBI (concurrent and deterministic modes) at several worker
/// counts, plus the speedup of each series over its own 1-worker row.
/// Fresh engines per row: the answer cache must not carry work across
/// measurements.
void PrintParallelMode(const Corpus& corpus,
                       const std::vector<KeywordQuery>& log, size_t k) {
  const std::span<const KeywordQuery> batch(
      log.data(), std::min<size_t>(log.size(), 2000));

  CsvTable table({"workers", "plain_qps", "arbi_qps", "arbi_det_qps",
                  "plain_speedup", "arbi_speedup", "arbi_det_speedup"});
  double base_plain = 0.0, base_arbi = 0.0, base_det = 0.0;
  for (const size_t workers : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(workers);
    BatchExecutor executor(pool);

    EngineStack plain_stack = EngineStack::Plain(corpus, k);
    const double plain_qps = MeasureQps(
        [&] { executor.ExecuteConcurrent(plain_stack.service(), batch); },
        batch.size());

    EngineStack arbi_stack = EngineStack::WithArbi(corpus, k, AsArbiConfig{});
    const double arbi_qps = MeasureQps(
        [&] { executor.ExecuteConcurrent(arbi_stack.service(), batch); },
        batch.size());

    EngineStack det_stack = EngineStack::WithArbi(corpus, k, AsArbiConfig{});
    const double det_qps = MeasureQps(
        [&] { executor.ExecuteDeterministic(*det_stack.arbi(), batch); },
        batch.size());

    if (workers == 1) {
      base_plain = plain_qps;
      base_arbi = arbi_qps;
      base_det = det_qps;
    }
    table.AddRow({static_cast<double>(workers), plain_qps, arbi_qps, det_qps,
                  plain_qps / std::max(base_plain, 1e-9),
                  arbi_qps / std::max(base_arbi, 1e-9),
                  det_qps / std::max(base_det, 1e-9)});
  }
  PrintFigure("fig15b: parallel batch throughput vs worker count", table);
}

/// Match throughput of the scatter-gather engine vs shard count: the same
/// query log, answered serially (one thread walking all shards) and with
/// a pool of one worker per shard. Answers are bitwise identical to the
/// single-index engine at every row, so this isolates the scaling of the
/// scatter phase against the partitioning + merge overhead.
void PrintShardScaling(const Corpus& corpus,
                       const std::vector<KeywordQuery>& log, size_t k) {
  const size_t queries = std::min<size_t>(log.size(), 2000);

  CsvTable table({"shards", "serial_match_qps", "pooled_match_qps",
                  "pooled_speedup"});
  double base_pooled = 0.0;
  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedInvertedIndex index(corpus, shards);
    ShardedSearchService serial_engine(index, k);
    const double serial_qps = MeasureQps(
        [&] {
          for (size_t i = 0; i < queries; ++i) serial_engine.Search(log[i]);
        },
        queries);

    ThreadPool pool(shards);
    ShardedSearchService pooled_engine(index, k, &pool);
    const double pooled_qps = MeasureQps(
        [&] {
          for (size_t i = 0; i < queries; ++i) pooled_engine.Search(log[i]);
        },
        queries);

    if (shards == 1) base_pooled = pooled_qps;
    table.AddRow({static_cast<double>(shards), serial_qps, pooled_qps,
                  pooled_qps / std::max(base_pooled, 1e-9)});
  }
  PrintFigure("fig15d: sharded match throughput vs shard count", table);
}

/// Epoch maintenance cost of the dynamic-corpus layer: documents merged
/// per second and mean publish latency of CorpusManager::Apply as the
/// update batch grows. Each batch mixes adds with batch/4 removals so the
/// incremental merge exercises both the append and the filter path; every
/// row starts from a fresh manager so earlier rows cannot warm later ones.
void PrintEpochMaintenance() {
  SyntheticCorpusConfig config;
  config.vocabulary_size = 20000;
  config.num_topics = 100;
  config.words_per_topic = 200;
  config.seed = 17;
  const size_t base_docs = PaperScale() ? 20000 : 6000;
  const size_t total_update_docs = PaperScale() ? 8192 : 2048;

  CsvTable table({"batch_docs", "publishes", "update_docs_per_s",
                  "publish_latency_ms"});
  for (const size_t batch : {16u, 64u, 256u, 1024u}) {
    SyntheticCorpusGenerator generator(config);
    CorpusManager manager(generator.Generate(base_docs));
    const size_t publishes = std::max<size_t>(2, total_update_docs / batch);

    uint64_t update_docs = 0;
    Stopwatch watch;
    for (size_t p = 0; p < publishes; ++p) {
      CorpusDelta delta;
      const Corpus fresh = generator.Generate(batch);
      delta.add.assign(fresh.documents().begin(), fresh.documents().end());
      const Corpus& current = manager.Current()->corpus();
      const size_t removals = batch / 4;
      const size_t stride =
          std::max<size_t>(1, current.size() / std::max<size_t>(removals, 1));
      for (size_t pos = 0;
           pos < current.size() && delta.remove.size() < removals;
           pos += stride) {
        delta.remove.push_back(current.documents()[pos].id());
      }
      update_docs += delta.add.size() + delta.remove.size();
      manager.Apply(delta);
    }
    const double seconds =
        static_cast<double>(watch.ElapsedNanos()) / 1e9;
    table.AddRow({static_cast<double>(batch),
                  static_cast<double>(publishes),
                  static_cast<double>(update_docs) / std::max(seconds, 1e-9),
                  seconds * 1e3 / static_cast<double>(publishes)});
  }
  PrintFigure("fig15e: epoch update throughput vs batch size", table);
}

// Defeats dead-code elimination of the measured decode loops without
// pulling in google-benchmark here.
volatile uint64_t g_decode_sink = 0;

/// fig15f: full-scan decode throughput (millions of postings per second)
/// of the block group-varint codec against the pre-block scalar varbyte
/// pair format, reconstructed locally since the production decoder no
/// longer speaks it. The block column must stay >= the varbyte column.
void PrintDecodeThroughput() {
  CsvTable table(
      {"list_size", "block_mps", "varbyte_mps", "block_speedup"});
  for (const size_t size : {10000u, 100000u}) {
    PostingList::Builder builder;
    std::vector<uint8_t> legacy;
    uint32_t prev = 0;
    for (uint32_t d = 0; d < size; ++d) {
      const uint32_t doc = d * 3;
      const uint32_t freq = 1 + d % 7;
      builder.Add(doc, freq);
      AppendVarByte(d == 0 ? doc : doc - prev, legacy);
      AppendVarByte(freq, legacy);
      prev = doc;
    }
    const PostingList list = std::move(builder).Build();
    const size_t rounds = (PaperScale() ? 2000u : 400u) * 10000u / size;

    uint64_t sink = 0;
    Stopwatch block_watch;
    for (size_t r = 0; r < rounds; ++r) {
      for (auto it = list.begin(); it.Valid(); it.Next()) {
        sink += it.Get().freq;
      }
    }
    const double block_s =
        static_cast<double>(block_watch.ElapsedNanos()) / 1e9;

    Stopwatch legacy_watch;
    for (size_t r = 0; r < rounds; ++r) {
      size_t offset = 0;
      uint32_t doc = 0;
      for (uint32_t d = 0; d < size; ++d) {
        uint32_t delta = 0;
        uint32_t freq = 0;
        if (!TryReadVarByte(legacy, offset, delta) ||
            !TryReadVarByte(legacy, offset, freq)) {
          break;
        }
        doc += delta;
        sink += freq;
      }
      sink += doc;
    }
    const double legacy_s =
        static_cast<double>(legacy_watch.ElapsedNanos()) / 1e9;
    g_decode_sink = sink;

    const double postings =
        static_cast<double>(size) * static_cast<double>(rounds);
    const double block_mps = postings / std::max(block_s, 1e-9) / 1e6;
    const double varbyte_mps = postings / std::max(legacy_s, 1e-9) / 1e6;
    table.AddRow({static_cast<double>(size), block_mps, varbyte_mps,
                  block_mps / std::max(varbyte_mps, 1e-9)});
  }
  PrintFigure("fig15f: posting decode throughput (block vs legacy varbyte)",
              table);
}

/// fig15g: disjunction cost vs fanout under each Or merge strategy, in
/// two regimes. Over dense top-df lists most children share each minimum
/// and the flat min-scan wins outright; over sparse mid-rank lists the
/// heap wins from the crossover on. The adaptive column must track the
/// flat column on the dense table below the crossover and the heap column
/// on the sparse table at and above it (kOrHeapCrossoverChildren,
/// engine/doc_iterator.h).
void PrintOrStrategySweep(const Corpus& corpus) {
  const InvertedIndex index(corpus);

  std::vector<std::pair<size_t, TermId>> by_df;
  for (TermId term = 0; term < corpus.vocabulary().size(); ++term) {
    const size_t df = index.DocumentFrequency(term);
    if (df > 0) by_df.emplace_back(df, term);
  }
  std::sort(by_df.rbegin(), by_df.rend());

  struct Regime {
    const char* title;
    size_t start;        // df-rank of the first term handed to the union
    size_t rounds_mult;  // sparse unions finish in microseconds — more
                         // rounds, or the table is timer noise
  };
  const Regime regimes[] = {
      {"fig15g: Or-strategy throughput vs fanout (dense top-df terms)", 0, 1},
      {"fig15g: Or-strategy throughput vs fanout (sparse mid-rank terms)",
       by_df.size() / 2, 50},
  };
  for (const Regime& regime : regimes) {
    CsvTable table({"fanout", "flat_qps", "heap_qps", "adaptive_qps"});
    for (const size_t fanout : {2u, 4u, 6u, 8u, 12u, 16u, 32u, 64u}) {
      if (regime.start + fanout > by_df.size()) break;
      std::vector<QueryNode> children;
      for (size_t i = 0; i < fanout; ++i) {
        children.push_back(QueryNode::Term(by_df[regime.start + i].second));
      }
      const QueryNode node = QueryNode::Or(std::move(children));
      const size_t rounds =
          (PaperScale() ? 400 : 120) * regime.rounds_mult;

      std::vector<double> qps;
      for (const OrStrategy strategy :
           {OrStrategy::kFlat, OrStrategy::kHeap, OrStrategy::kAdaptive}) {
        uint64_t sink = 0;
        Stopwatch watch;
        for (size_t r = 0; r < rounds; ++r) {
          sink += ExecuteCount(index, node, strategy);
        }
        g_decode_sink = sink;
        const double seconds =
            static_cast<double>(watch.ElapsedNanos()) / 1e9;
        qps.push_back(static_cast<double>(rounds) /
                      std::max(seconds, 1e-9));
      }
      table.AddRow({static_cast<double>(fanout), qps[0], qps[1], qps[2]});
    }
    PrintFigure(regime.title, table);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  std::string report_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(std::string("--report-out=").size());
    } else {
      std::fprintf(stderr,
                   "usage: bench_fig15_overhead [--trace-out=FILE] "
                   "[--report-out=FILE]\n");
      return 2;
    }
  }
#if !ASUP_METRICS_ENABLED
  if (!trace_out.empty() || !report_out.empty()) {
    std::fprintf(stderr,
                 "--trace-out/--report-out require an ASUP_METRICS=ON "
                 "build\n");
    return 2;
  }
#endif

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus corpus = env->SampleCorpus(params.corpus_sizes.back(), 4);

  const size_t log_size = PaperScale() ? 35000 : 8000;
  AolLikeConfig log_config;
  log_config.log_size = log_size;
  log_config.unique_queries = log_size / 3;
  const AolLikeWorkload workload(corpus, log_config);

  std::vector<uint64_t> checkpoints;
  for (uint64_t c = log_size / 10; c <= log_size; c += log_size / 10) {
    checkpoints.push_back(c);
  }

#if ASUP_METRICS_ENABLED
  // Keep only the most recent traces; the corpus/workload build above is
  // excluded from the per-stage report by resetting the registry here.
  obs::TraceRingSink trace_sink(1024);
  obs::InstallTraceSink(&trace_sink);
  ResetRunMetrics();
#endif

  const auto with_cache =
      RatioSeries(corpus, workload.log(), params.k, true, checkpoints);
  const auto without_cache =
      RatioSeries(corpus, workload.log(), params.k, false, checkpoints);

  CsvTable table({"queries", "time_ratio", "time_ratio_no_cache"});
  for (size_t i = 0;
       i < std::min({checkpoints.size(), with_cache.size(),
                     without_cache.size()});
       ++i) {
    table.AddRow({static_cast<double>(checkpoints[i]), with_cache[i],
                  without_cache[i]});
  }
  PrintFigure("fig15: AS-ARBI response-time ratio vs number of queries",
              table);

  PrintParallelMode(corpus, workload.log(), params.k);

  PrintShardScaling(corpus, workload.log(), params.k);

  PrintEpochMaintenance();

  PrintDecodeThroughput();

  PrintOrStrategySweep(corpus);

  PrintRunReport("fig15c: per-stage latency percentiles (ns)");
#if ASUP_METRICS_ENABLED
  obs::InstallTraceSink(nullptr);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    trace_sink.WriteJsonl(out);
    std::fprintf(stderr, "wrote %zu traces to %s\n",
                 trace_sink.Snapshot().size(), trace_out.c_str());
  }
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", report_out.c_str());
      return 1;
    }
    out << obs::RunReport::Collect().Json() << "\n";
    std::fprintf(stderr, "wrote run report to %s\n", report_out.c_str());
  }
#endif
  return 0;
}
