// Figure 21: the defense watchtower closing the loop on our own attack
// suite. A benign multi-client AOL-like mix and one attacking client share
// a defended interface across a churn epoch stream; every query flows
// through the structured event log into the online suspicion scorer.
// Three tables:
//
//   fig21a — per-client window features and verdicts of the headline run
//            (dynamic estimator vs AS-SIMPLE): the attacker separates on
//            repeat-query fraction, term-growth collapse and hidden-answer
//            encounter rate, not on volume alone;
//   fig21b — detection summaries (TPR/FPR/advantage) per defense and
//            attacker kind — note detection *improves* under defenses,
//            because suppression events are themselves signal;
//   fig21c — the false-positive baseline: benign-only streams per defense
//            (FPR must stay at 0 for the thresholds to be deployable).
//
// Under -DASUP_METRICS=OFF the watchtower is compiled out and this binary
// only reports the disabled configuration.

#include <cstdio>
#include <vector>

#include "asup/eval/detection_experiment.h"
#include "asup/eval/experiment.h"

int main() {
  using namespace asup;

  DetectionConfig config;

  DetectionReport headline =
      RunDetectionExperiment(config, DefenseKind::kSimple,
                             AttackerKind::kDynamic);
  if (!headline.enabled) {
    std::printf("fig21: watchtower disabled (-DASUP_METRICS=OFF build); "
                "no detection data\n");
    return 0;
  }
  PrintFigure("fig21a: per-client watchtower features, dynamic vs AS-SIMPLE",
              DetectionClientsCsv(headline));

  std::vector<DetectionReport> runs;
  runs.push_back(RunDetectionExperiment(config, DefenseKind::kNone,
                                        AttackerKind::kDynamic));
  runs.push_back(std::move(headline));
  runs.push_back(RunDetectionExperiment(config, DefenseKind::kArbi,
                                        AttackerKind::kDynamic));
  runs.push_back(RunDetectionExperiment(config, DefenseKind::kSimple,
                                        AttackerKind::kUnbiased));
  runs.push_back(RunDetectionExperiment(config, DefenseKind::kSimple,
                                        AttackerKind::kStratified));
  PrintFigure("fig21b: detection summaries (tpr/fpr/advantage) per defense",
              DetectionSummaryCsv(runs));

  std::vector<DetectionReport> benign_only;
  for (DefenseKind defense :
       {DefenseKind::kNone, DefenseKind::kSimple, DefenseKind::kArbi}) {
    benign_only.push_back(
        RunDetectionExperiment(config, defense, AttackerKind::kNone));
  }
  PrintFigure("fig21c: benign-only false-positive baseline per defense",
              DetectionSummaryCsv(benign_only));
  return 0;
}
