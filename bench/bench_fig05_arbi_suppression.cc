// Figure 5: UNBIASED-EST estimates vs. number of queries over S, 1.33S,
// 1.67S, 2S with AS-ARBI applied — the four trajectories converge toward
// the shared segment top, so the adversary can no longer tell the corpora
// apart.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const std::vector<Corpus> corpora = MakeCorpora(*env, params);

  const auto trajectories =
      RunUnbiasedSweep(*env, corpora, params, Defense::kArbi);
  std::vector<std::string> names;
  for (size_t i = 0; i < corpora.size(); ++i) {
    names.push_back("est_" + params.corpus_names[i]);
  }
  IndistinguishableSegment segment(corpora.front().size(), params.gamma);
  PrintFigure("fig05: UNBIASED-EST vs AS-ARBI (gamma=2); shared segment top " +
                  std::to_string(static_cast<long long>(segment.segment_high())),
              TrajectoriesToCsv(names, trajectories));
  return 0;
}
