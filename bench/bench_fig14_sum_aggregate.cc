// Figure 14: suppression of a SUM aggregate — the total length of all
// documents containing the word "sports" — with and without AS-ARBI.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);

  const TermId sports = *env->vocabulary().Lookup("sports");
  const AggregateQuery aggregate = AggregateQuery::SumLengthContaining(sports);

  // SUM estimates are noisier than COUNT (only documents containing the
  // selection term contribute), so average three attack replicates.
  std::vector<std::vector<EstimationPoint>> trajectories;
  for (Defense defense : {Defense::kNone, Defense::kArbi}) {
    for (const Corpus* corpus : {&small, &large}) {
      std::vector<std::vector<EstimationPoint>> runs;
      for (size_t rep = 0; rep < 3; ++rep) {
        EngineStack stack = MakeStack(*corpus, params, defense);
        UnbiasedEstimator::Options options;
        options.seed = params.seed + 7 + rep * 101;
        UnbiasedEstimator estimator(env->pool(), aggregate,
                                    FetchFrom(*corpus), options);
        runs.push_back(estimator.Run(stack.service(), params.budget,
                                     params.report_every));
      }
      trajectories.push_back(AverageTrajectories(runs));
    }
  }
  std::fprintf(stdout, "# true SUM(length WHERE 'sports'): S=%.0f 2S=%.0f\n",
               aggregate.TrueValue(small), aggregate.TrueValue(large));
  PrintFigure(
      "fig14: SUM(doc_length WHERE contains 'sports') +- AS-ARBI, S/2S",
      TrajectoriesToCsv(
          {"S_unbiased", "2S_unbiased", "S_AS-ARBI", "2S_AS-ARBI"},
          trajectories));
  return 0;
}
