// Figure 8: UNBIASED-EST with and without AS-ARBI at obfuscation factor
// γ = 5, over corpora T and 5T (same indistinguishable segment).

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma5Family();
  const auto env = MakeEnv(params);
  const std::vector<Corpus> corpora = MakeCorpora(*env, params);

  auto plain = RunUnbiasedSweep(*env, corpora, params, Defense::kNone,
                               AggregateQuery::Count(), /*replicates=*/3);
  auto arbi = RunUnbiasedSweep(*env, corpora, params, Defense::kArbi,
                              AggregateQuery::Count(), /*replicates=*/3);
  plain.insert(plain.end(), arbi.begin(), arbi.end());
  PrintFigure("fig08: UNBIASED-EST +- AS-ARBI, gamma=5, corpora T/5T",
              TrajectoriesToCsv({"T_unbiased", "5T_unbiased", "T_AS-ARBI",
                                 "5T_AS-ARBI"},
                                plain));
  return 0;
}
