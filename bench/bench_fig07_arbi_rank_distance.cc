// Figure 7: average generalized rank distance of AS-ARBI answers vs.
// number of bona fide queries, over S and 2S.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);
  const size_t log_size = PaperScale() ? 35000 : 8000;

  const auto series_small = RunUtility(small, params, Defense::kArbi, log_size);
  const auto series_large = RunUtility(large, params, Defense::kArbi, log_size);

  CsvTable table({"queries", "rankdist_S", "rankdist_2S"});
  const size_t rows = std::min(series_small.size(), series_large.size());
  for (size_t r = 0; r < rows; ++r) {
    table.AddRow({static_cast<double>(series_small[r].queries),
                  series_small[r].rank_distance,
                  series_large[r].rank_distance});
  }
  PrintFigure("fig07: AS-ARBI rank distance vs AOL-like queries", table);
  return 0;
}
