// Ablation: adversary pool construction — the single-word pool of the
// paper's experiments vs the word-pair (phrase-style) pool of the original
// attacks [8, 9], which keeps d_max small. Reports the undefended estimate
// accuracy and the AS-ARBI-defended estimates for both pools.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);

  const QueryPool pair_pool =
      QueryPool::WordPairPool(env->held_out(), /*pairs_per_doc=*/20,
                              /*seed=*/params.seed + 5);
  std::printf("# single-word pool: %zu queries; word-pair pool: %zu queries\n",
              env->pool().size(), pair_pool.size());

  CsvTable table(
      {"pair_pool", "defended", "est_S", "est_2S", "spread"});
  for (int use_pairs = 0; use_pairs < 2; ++use_pairs) {
    const QueryPool& pool = use_pairs ? pair_pool : env->pool();
    for (Defense defense : {Defense::kNone, Defense::kArbi}) {
      std::vector<std::vector<EstimationPoint>> trajectories;
      for (const Corpus* corpus : {&small, &large}) {
        EngineStack stack = MakeStack(*corpus, params, defense);
        UnbiasedEstimator::Options options;
        options.seed = params.seed + 7;
        UnbiasedEstimator estimator(pool, AggregateQuery::Count(),
                                    FetchFrom(*corpus), options);
        trajectories.push_back(
            estimator.Run(stack.service(), params.budget, params.budget));
      }
      table.AddRow({static_cast<double>(use_pairs),
                    defense == Defense::kArbi ? 1.0 : 0.0,
                    trajectories[0].back().estimate,
                    trajectories[1].back().estimate,
                    FinalEstimateSpread(trajectories)});
    }
  }
  PrintFigure("ablation: single-word vs word-pair adversary pools", table);
  return 0;
}
