// Figure 18: the correlated-query attack of Section 5.1 against corpus P
// (segment bottom, μ ≈ 1). Under AS-SIMPLE the per-query count ratio
// decays toward μ/γ as the attack's overlapping queries keep hitting
// already-returned documents; AS-ARBI's virtual query processing holds the
// ratio near 1.

#include "bench_common.h"

int main() {
  asup::bench::RunCorrelatedFigure(
      1050, "fig18: correlated-query attack, corpus P (1050 docs, k=50)");
  return 0;
}
