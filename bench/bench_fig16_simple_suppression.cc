// Figure 16: UNBIASED-EST with and without the basic AS-SIMPLE defense
// over S and 2S.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const Corpus small = env->SampleCorpus(params.corpus_sizes.front(), 1);
  const Corpus large = env->SampleCorpus(params.corpus_sizes.back(), 4);

  std::vector<std::vector<EstimationPoint>> trajectories;
  for (Defense defense : {Defense::kNone, Defense::kSimple}) {
    for (const Corpus* corpus : {&small, &large}) {
      EngineStack stack = MakeStack(*corpus, params, defense);
      UnbiasedEstimator::Options options;
      options.seed = params.seed + 7;
      UnbiasedEstimator estimator(env->pool(), AggregateQuery::Count(),
                                  FetchFrom(*corpus), options);
      trajectories.push_back(
          estimator.Run(stack.service(), params.budget, params.report_every));
    }
  }
  PrintFigure("fig16: UNBIASED-EST +- AS-SIMPLE, corpora S/2S",
              TrajectoriesToCsv(
                  {"S_unbiased", "2S_unbiased", "S_AS-SIMPLE", "2S_AS-SIMPLE"},
                  trajectories));
  return 0;
}
