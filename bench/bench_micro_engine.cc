// Micro-benchmarks (google-benchmark) of the substrate: index build,
// query processing with and without the suppression layers, posting-list
// decoding, the AS-ARBI trigger machinery, and the parallel batch
// executor's throughput scaling over 1..8 workers.

#include <span>

#include <benchmark/benchmark.h>

#include "asup/engine/doc_iterator.h"
#include "asup/engine/parallel_service.h"
#include "asup/engine/pipeline/result_processor.h"
#include "asup/engine/query_node.h"
#include "asup/engine/scoring.h"
#include "asup/engine/search_engine.h"
#include "asup/engine/sharded_service.h"
#include "asup/index/block_codec.h"
#include "asup/index/inverted_index.h"
#include "asup/index/sharded_index.h"
#include "asup/obs/trace.h"
#include "asup/suppress/as_arbi.h"
#include "asup/suppress/as_simple.h"
#include "asup/text/synthetic_corpus.h"
#include "asup/util/thread_pool.h"
#include "asup/workload/aol_like.h"

namespace asup {
namespace {

struct MicroEnv {
  MicroEnv() {
    SyntheticCorpusConfig config;
    config.vocabulary_size = 30000;
    config.seed = 7;
    SyntheticCorpusGenerator generator(config);
    corpus = std::make_unique<Corpus>(generator.Generate(20000));
    index = std::make_unique<InvertedIndex>(*corpus);
    engine = std::make_unique<PlainSearchEngine>(*index, 5);
    AolLikeConfig log_config;
    log_config.log_size = 4000;
    log_config.unique_queries = 2000;
    workload = std::make_unique<AolLikeWorkload>(*corpus, log_config);
  }
  std::unique_ptr<Corpus> corpus;
  std::unique_ptr<InvertedIndex> index;
  std::unique_ptr<PlainSearchEngine> engine;
  std::unique_ptr<AolLikeWorkload> workload;
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

void BM_IndexBuild(benchmark::State& state) {
  const Corpus& corpus = *Env().corpus;
  for (auto _ : state) {
    InvertedIndex index(corpus);
    benchmark::DoNotOptimize(index.stats().num_postings);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_IndexBuild)->Unit(benchmark::kMillisecond);

void BM_PlainSearch(benchmark::State& state) {
  MicroEnv& env = Env();
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.engine->Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainSearch);

// The composable chain run end to end with the optional engine-layer
// stages attached (pluggable TF-IDF ranker + facet histogram) — the cost
// of stage dispatch plus rescoring, against BM_PlainSearch's monolithic
// interface call as the baseline.
void BM_PipelineRescoreFacet(benchmark::State& state) {
  MicroEnv& env = Env();
  const auto& log = env.workload->log();
  ProcessorChain chain;
  chain.Add(std::make_unique<MatchProcessor>())
      .Add(std::make_unique<InterfaceStatusProcessor>())
      .Add(std::make_unique<RescoreProcessor>(std::make_unique<TfIdfScorer>()))
      .Add(std::make_unique<FacetCountProcessor>(16));
  const SnapshotHandle snapshot = env.engine->PinSnapshot();
  size_t i = 0;
  for (auto _ : state) {
    QueryContext context;
    context.query = &log[i];
    context.base = env.engine.get();
    context.snapshot = snapshot.get();
    context.k = env.engine->k();
    context.match_limit = env.engine->k();
    chain.Run(context);
    benchmark::DoNotOptimize(context.result.docs.size());
    benchmark::DoNotOptimize(context.facet_buckets.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineRescoreFacet);

void BM_AsSimpleSearch(benchmark::State& state) {
  MicroEnv& env = Env();
  AsSimpleConfig config;
  config.cache_answers = false;  // measure processing, not cache hits
  AsSimpleEngine defended(*env.engine, config);
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(defended.Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsSimpleSearch);

void BM_AsArbiSearch(benchmark::State& state) {
  MicroEnv& env = Env();
  AsArbiConfig config;
  config.cache_answers = false;
  AsArbiEngine defended(*env.engine, config);
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(defended.Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsArbiSearch);

void BM_AsArbiSearchCached(benchmark::State& state) {
  MicroEnv& env = Env();
  AsArbiConfig config;
  AsArbiEngine defended(*env.engine, config);
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(defended.Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AsArbiSearchCached);

// Batch throughput over the undefended engine at state.range(0) workers.
// The index is immutable and the engine stateless, so this is the pure
// fan-out scaling of the thread pool + executor; items/s is the headline
// queries-per-second figure. Compare Arg(8) to Arg(1) on a quiesced
// multicore machine for the parallel speedup (a 1-core container shows
// ~1x by construction).
void BM_ParallelPlainBatch(benchmark::State& state) {
  MicroEnv& env = Env();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  BatchExecutor executor(pool);
  const auto& log = env.workload->log();
  const std::span<const KeywordQuery> batch(log.data(), 1000);
  for (auto _ : state) {
    auto results = executor.ExecuteConcurrent(*env.engine, batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ParallelPlainBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Free-running concurrent batch over a defended (AS-ARBI) engine. The
// engine synchronizes internally; each iteration uses a fresh engine so
// the answer cache never short-circuits the work being measured.
void BM_ParallelArbiBatch(benchmark::State& state) {
  MicroEnv& env = Env();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  BatchExecutor executor(pool);
  const auto& log = env.workload->log();
  const std::span<const KeywordQuery> batch(log.data(), 1000);
  for (auto _ : state) {
    state.PauseTiming();
    AsArbiEngine defended(*env.engine, AsArbiConfig{});
    state.ResumeTiming();
    auto results = executor.ExecuteConcurrent(defended, batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_ParallelArbiBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Deterministic mode on the same defended engine: parallel prefetch +
// serial in-order commit. The gap to BM_ParallelArbiBatch is the price of
// bitwise-serial-equivalent state evolution.
void BM_DeterministicArbiBatch(benchmark::State& state) {
  MicroEnv& env = Env();
  ThreadPool pool(static_cast<size_t>(state.range(0)));
  BatchExecutor executor(pool);
  const auto& log = env.workload->log();
  const std::span<const KeywordQuery> batch(log.data(), 1000);
  for (auto _ : state) {
    state.PauseTiming();
    AsArbiEngine defended(*env.engine, AsArbiConfig{});
    state.ResumeTiming();
    auto results = executor.ExecuteDeterministic(defended, batch);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_DeterministicArbiBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Scatter-gather matching at state.range(0) shards, single-threaded
// fan-out: the pure cost of partitioned matching + exact merge relative
// to BM_PlainSearch (answers are bitwise identical by construction).
void BM_ShardedSearchSerial(benchmark::State& state) {
  MicroEnv& env = Env();
  ShardedInvertedIndex index(*env.corpus,
                             static_cast<size_t>(state.range(0)));
  ShardedSearchService engine(index, env.engine->k());
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedSearchSerial)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// The same scatter phase fanned out on a pool of range(0) workers, one
// worker per shard. Compare to BM_ShardedSearchSerial at the same shard
// count for the match-throughput scaling of the scatter-gather engine.
void BM_ShardedSearchPooled(benchmark::State& state) {
  MicroEnv& env = Env();
  const auto shards = static_cast<size_t>(state.range(0));
  ShardedInvertedIndex index(*env.corpus, shards);
  ThreadPool pool(shards);
  ShardedSearchService engine(index, env.engine->k(), &pool);
  const auto& log = env.workload->log();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Search(log[i]).docs.size());
    i = (i + 1) % log.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShardedSearchPooled)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Sharded index construction: N per-shard indexes over disjoint ranges.
void BM_ShardedIndexBuild(benchmark::State& state) {
  const Corpus& corpus = *Env().corpus;
  const auto shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    ShardedInvertedIndex index(corpus, shards);
    benchmark::DoNotOptimize(index.stats().num_postings);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_ShardedIndexBuild)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// Block-format decode throughput: full scan of a 10k-posting list through
// the group-varint block codec (the format every engine reads now).
void BM_PostingDecode(benchmark::State& state) {
  PostingList::Builder builder;
  for (uint32_t d = 0; d < 10000; ++d) builder.Add(d * 3, 1 + d % 7);
  const PostingList list = std::move(builder).Build();
  for (auto _ : state) {
    size_t total = 0;
    for (auto it = list.begin(); it.Valid(); it.Next()) {
      total += it.Get().freq;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_PostingDecode);

// The pre-block posting format, reconstructed locally: one LEB128
// (delta, freq) varbyte pair per posting, decoded scalar one value at a
// time. The BM_PostingDecode / BM_LegacyVarByteDecode ratio is the
// decode-throughput win of the group-varint block format (fig15f).
void BM_LegacyVarByteDecode(benchmark::State& state) {
  std::vector<uint8_t> bytes;
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t d = 0; d < 10000; ++d) {
    const uint32_t doc = d * 3;
    AppendVarByte(first ? doc : doc - prev, bytes);
    AppendVarByte(1 + d % 7, bytes);
    prev = doc;
    first = false;
  }
  for (auto _ : state) {
    size_t total = 0;
    size_t offset = 0;
    uint32_t doc = 0;
    for (uint32_t d = 0; d < 10000; ++d) {
      uint32_t delta = 0;
      uint32_t freq = 0;
      if (!TryReadVarByte(bytes, offset, delta) ||
          !TryReadVarByte(bytes, offset, freq)) {
        break;
      }
      doc += delta;
      total += freq;
    }
    benchmark::DoNotOptimize(total);
    benchmark::DoNotOptimize(doc);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_LegacyVarByteDecode);

// Vocabulary lookup through the heterogeneous (string_view) path: query
// parsing resolves every token this way, so the per-lookup cost — and in
// particular the absence of a temporary std::string allocation per probe —
// feeds straight into query latency. The miss case exercises the same path
// with tokens guaranteed absent.
void BM_VocabularyLookup(benchmark::State& state) {
  const Vocabulary& vocab = Env().corpus->vocabulary();
  std::vector<std::string> words;
  words.reserve(vocab.size());
  for (TermId id = 0; id < vocab.size(); ++id) {
    words.push_back(vocab.WordOf(id));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vocab.Lookup(std::string_view(words[i])).has_value());
    i = (i + 1) % words.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VocabularyLookup);

void BM_VocabularyLookupMiss(benchmark::State& state) {
  const Vocabulary& vocab = Env().corpus->vocabulary();
  std::vector<std::string> words;
  words.reserve(1024);
  for (size_t w = 0; w < 1024; ++w) {
    words.push_back("zz-absent-" + std::to_string(w));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vocab.Lookup(std::string_view(words[i])).has_value());
    i = (i + 1) % words.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VocabularyLookupMiss);

// Multi-term conjunctive match latency through the iterator algebra
// (rarest-first leapfrog And over block-compressed postings) — the match
// path every engine now runs.
void BM_ConjunctiveMatch(benchmark::State& state) {
  MicroEnv& env = Env();
  const auto& vocab = env.corpus->vocabulary();
  const auto query = KeywordQuery::Parse(vocab, "sports game team");
  const QueryNode node = QueryNode::FromKeywords(query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ExecuteMatch(*env.index, node, query.terms()).size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConjunctiveMatch);

// Terms for the disjunction sweeps, by document frequency rank.
// rank_from_top=true returns the state.range(0) highest-df terms (dense,
// heavily overlapping lists — every step has many children at the minimum,
// so the flat scan's regime); false returns mid-rank rare terms (sparse,
// mostly disjoint lists — usually one child per minimum, the heap's
// regime).
std::vector<TermId> TermsByDfRank(const InvertedIndex& index, size_t count,
                                  bool rank_from_top) {
  std::vector<std::pair<size_t, TermId>> by_df;
  const size_t vocab = index.corpus().vocabulary().size();
  for (TermId term = 0; term < vocab; ++term) {
    const size_t df = index.DocumentFrequency(term);
    if (df > 0) by_df.emplace_back(df, term);
  }
  std::sort(by_df.rbegin(), by_df.rend());
  std::vector<TermId> terms;
  const size_t start = rank_from_top ? 0 : by_df.size() / 2;
  for (size_t i = start; i < by_df.size() && terms.size() < count; ++i) {
    terms.push_back(by_df[i].second);
  }
  return terms;
}

// Disjunction count at state.range(0) children under a fixed Or merge
// strategy. The flat/heap crossing point across the sparse sweep is what
// sets kOrHeapCrossoverChildren (engine/doc_iterator.h, EXPERIMENTS.md);
// the adaptive rows must track the better of the two in each regime it
// can distinguish (child count is its only input).
void OrCountSweep(benchmark::State& state, OrStrategy strategy, bool dense) {
  MicroEnv& env = Env();
  const auto fanout = static_cast<size_t>(state.range(0));
  std::vector<QueryNode> children;
  for (TermId term : TermsByDfRank(*env.index, fanout, dense)) {
    children.push_back(QueryNode::Term(term));
  }
  const QueryNode node = QueryNode::Or(std::move(children));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExecuteCount(*env.index, node, strategy));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OrCountFlat(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kFlat, /*dense=*/true);
}
BENCHMARK(BM_OrCountFlat)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_OrCountHeap(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kHeap, /*dense=*/true);
}
BENCHMARK(BM_OrCountHeap)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_OrCountAdaptive(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kAdaptive, /*dense=*/true);
}
BENCHMARK(BM_OrCountAdaptive)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_OrCountSparseFlat(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kFlat, /*dense=*/false);
}
BENCHMARK(BM_OrCountSparseFlat)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_OrCountSparseHeap(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kHeap, /*dense=*/false);
}
BENCHMARK(BM_OrCountSparseHeap)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

void BM_OrCountSparseAdaptive(benchmark::State& state) {
  OrCountSweep(state, OrStrategy::kAdaptive, /*dense=*/false);
}
BENCHMARK(BM_OrCountSparseAdaptive)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

#if ASUP_METRICS_ENABLED

// Cost of the obs primitives themselves. The engine benchmarks above run
// with the instrumentation compiled in either way; these isolate the
// per-call price the <2% overhead budget (DESIGN.md §11) is made of.

void BM_MetricCounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    ASUP_METRIC_COUNT("asup_bench_counter_total", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricCounterAdd);

void BM_MetricHistogramObserve(benchmark::State& state) {
  int64_t v = 1;
  for (auto _ : state) {
    ASUP_METRIC_OBSERVE_NANOS("asup_bench_latency_ns", v);
    v = (v * 17) & 0xFFFFF;  // walk the bucket ladder
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricHistogramObserve);

// A stage scope with no active trace: one steady_clock read at open, one
// at close, plus the stage-histogram observe. This is the hot-path cost
// every ASUP_TRACE_STAGE site pays per query.
void BM_TraceStageScopeUntraced(benchmark::State& state) {
  for (auto _ : state) {
    ASUP_TRACE_STAGE(obs::Stage::kMatch);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceStageScopeUntraced);

// One fully traced query: open a trace, record one stage span, publish to
// the ring sink. This is the extra per-query price of a --trace-out run.
void BM_TraceStageScopeTraced(benchmark::State& state) {
  obs::TraceRingSink sink(16);
  obs::InstallTraceSink(&sink);
  for (auto _ : state) {
    obs::ScopedQueryTrace traced("bench");
    ASUP_TRACE_STAGE(obs::Stage::kMatch);
    benchmark::ClobberMemory();
  }
  obs::InstallTraceSink(nullptr);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceStageScopeTraced);

#endif  // ASUP_METRICS_ENABLED

}  // namespace
}  // namespace asup

BENCHMARK_MAIN();
