// Figure 4: UNBIASED-EST estimates vs. number of queries over the nested
// corpora S, 1.33S, 1.67S, 2S with NO defense — the four trajectories
// separate cleanly, demonstrating the aggregate-disclosure threat.

#include "bench_common.h"

int main() {
  using namespace asup;
  using namespace asup::bench;

  const FamilyParams params = Gamma2Family();
  const auto env = MakeEnv(params);
  const std::vector<Corpus> corpora = MakeCorpora(*env, params);

  const auto trajectories =
      RunUnbiasedSweep(*env, corpora, params, Defense::kNone);
  std::vector<std::string> names;
  for (size_t i = 0; i < corpora.size(); ++i) {
    names.push_back("est_" + params.corpus_names[i]);
  }
  PrintFigure(
      "fig04: UNBIASED-EST, no defense, corpora " +
          std::to_string(corpora.front().size()) + ".." +
          std::to_string(corpora.back().size()) + " docs, k=" +
          std::to_string(params.k),
      TrajectoriesToCsv(names, trajectories));
  return 0;
}
